package track

import (
	"testing"

	"emap/internal/dsp"
	"emap/internal/mdb"
	"emap/internal/search"
	"emap/internal/synth"
)

// fixture builds an MDB rich enough for retrieval-then-tracking:
// several staggered instances per archetype for normal and seizure
// classes.
type fixture struct {
	store *mdb.Store
	gen   *synth.Generator
	fir   *dsp.FIR
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	g := synth.NewGenerator(synth.Config{Seed: 21, ArchetypesPerClass: 3})
	var recs []*synth.Recording
	for arch := 0; arch < 3; arch++ {
		for i := 0; i < 4; i++ {
			recs = append(recs,
				g.Instance(synth.Normal, arch, synth.InstanceOpts{
					OffsetSamples: i * 1500, DurSeconds: 60}),
				g.Instance(synth.Seizure, arch, synth.InstanceOpts{
					OffsetSamples: (synth.OnsetAt-60)*256 + i*1500, DurSeconds: 60}),
			)
		}
	}
	store, err := mdb.Build(recs, mdb.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	fir, err := dsp.DesignBandpass(100, 11, 40, 256, dsp.Hamming)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{store: store, gen: g, fir: fir}
}

// stream returns consecutive filtered one-second windows of a fresh
// instance, skipping the filter transient.
func (f *fixture) stream(class synth.Class, arch, offsetSamples, seconds int) [][]float64 {
	rec := f.gen.Instance(class, arch, synth.InstanceOpts{
		OffsetSamples: offsetSamples, DurSeconds: float64(seconds), NoArtifacts: true})
	filtered := f.fir.Apply(rec.Samples)
	var wins [][]float64
	for start := 512; start+256 <= len(filtered); start += 256 {
		wins = append(wins, filtered[start:start+256])
	}
	return wins
}

func (f *fixture) searchFirst(t testing.TB, wins [][]float64) *search.Result {
	t.Helper()
	s := search.NewSearcher(f.store, search.Params{})
	res, err := s.Algorithm1(wins[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("fixture produced no retrievable matches")
	}
	return res
}

func TestTrackingRetainsTrueContinuations(t *testing.T) {
	f := newFixture(t)
	wins := f.stream(synth.Normal, 0, 3000, 20)
	res := f.searchFirst(t, wins)
	tr := NewTracker(f.store, res.Matches, Params{})
	var last StepResult
	for i := 1; i <= 5 && i < len(wins); i++ {
		last = tr.Step(wins[i])
	}
	if last.Remaining == 0 {
		t.Fatal("tracking eliminated every signal for a stable normal input")
	}
	if last.Iteration != 5 {
		t.Fatalf("iteration = %d", last.Iteration)
	}
}

func TestTrackingEliminatesMismatches(t *testing.T) {
	f := newFixture(t)
	wins := f.stream(synth.Normal, 0, 3000, 20)
	res := f.searchFirst(t, wins)
	tr := NewTracker(f.store, res.Matches, Params{})
	// Feed windows from a *different archetype*: continuations no
	// longer match, so tracking should collapse quickly.
	other := f.stream(synth.Normal, 1, 3000, 20)
	var last StepResult
	for i := 1; i <= 3; i++ {
		last = tr.Step(other[i])
	}
	if last.Remaining > len(res.Matches)/4 {
		t.Fatalf("tracking kept %d of %d signals on decoy input", last.Remaining, len(res.Matches))
	}
}

func TestPARisesForPreictalInput(t *testing.T) {
	f := newFixture(t)
	// Input starting in the late preictal window of the seizure
	// canonical: anomalous-labelled continuations should outlive the
	// normal matches, raising P_A (the Fig. 2 mechanism).
	off := (synth.OnsetAt - 25) * 256
	wins := f.stream(synth.Seizure, 0, off, 30)
	res := f.searchFirst(t, wins)
	tr := NewTracker(f.store, res.Matches, Params{})
	first := tr.PA()
	var last StepResult
	for i := 1; i <= 5; i++ {
		last = tr.Step(wins[i])
	}
	if last.Remaining == 0 {
		t.Fatal("all signals eliminated")
	}
	if last.PA < first {
		t.Fatalf("P_A fell from %.2f to %.2f for a preictal input", first, last.PA)
	}
	if last.PA < 0.5 {
		t.Fatalf("P_A only %.2f after 5 preictal iterations", last.PA)
	}
}

func TestNeedsCloudWhenSetCollapses(t *testing.T) {
	f := newFixture(t)
	wins := f.stream(synth.Normal, 0, 3000, 20)
	res := f.searchFirst(t, wins)
	tr := NewTracker(f.store, res.Matches, Params{TrackThreshold: 1000})
	step := tr.Step(wins[1])
	if !step.NeedsCloud {
		t.Fatal("H above match count must trigger a cloud call")
	}
}

func TestExpiryAtRecordingEnd(t *testing.T) {
	f := newFixture(t)
	// The input stream must outlast the 60 s recordings backing the
	// tracked views for expiry to occur.
	wins := f.stream(synth.Normal, 0, 3000, 80)
	res := f.searchFirst(t, wins)
	tr := NewTracker(f.store, res.Matches, Params{AreaThreshold: 1e12}) // never eliminate on similarity
	totalExpired := 0
	for i := 1; i < len(wins); i++ {
		st := tr.Step(wins[i])
		totalExpired += st.Expired
		if st.Remaining == 0 {
			break
		}
	}
	if totalExpired == 0 {
		t.Fatal("long tracking never expired any recording view")
	}
	for _, w := range tr.Tracked() {
		if w.Expired && w.Alive {
			t.Fatal("expired signal still alive")
		}
	}
}

func TestCorrMethodCostlier(t *testing.T) {
	f := newFixture(t)
	wins := f.stream(synth.Normal, 0, 3000, 20)
	res := f.searchFirst(t, wins)
	area := NewTracker(f.store, res.Matches, Params{})
	corr := NewTracker(f.store, res.Matches, Params{Method: CorrMethod})
	sa := area.Step(wins[1])
	sc := corr.Step(wins[1])
	if sc.Evaluations < 3*sa.Evaluations {
		t.Fatalf("corr evaluations %d not ≫ area evaluations %d", sc.Evaluations, sa.Evaluations)
	}
}

func TestCorrMethodTracksToo(t *testing.T) {
	f := newFixture(t)
	wins := f.stream(synth.Normal, 0, 3000, 20)
	res := f.searchFirst(t, wins)
	tr := NewTracker(f.store, res.Matches, Params{Method: CorrMethod})
	var last StepResult
	for i := 1; i <= 3; i++ {
		last = tr.Step(wins[i])
	}
	if last.Remaining == 0 {
		t.Fatal("correlation tracker eliminated everything on a true continuation")
	}
}

func TestTrackerAccessors(t *testing.T) {
	f := newFixture(t)
	wins := f.stream(synth.Normal, 0, 3000, 20)
	res := f.searchFirst(t, wins)
	tr := NewTracker(f.store, res.Matches, Params{})
	if tr.Remaining() != len(res.Matches) {
		t.Fatalf("Remaining = %d, want %d", tr.Remaining(), len(res.Matches))
	}
	if tr.Iteration() != 0 {
		t.Fatal("fresh tracker should be at iteration 0")
	}
	pa := tr.PA()
	if pa < 0 || pa > 1 {
		t.Fatalf("PA out of range: %g", pa)
	}
	if got := tr.Params().AreaThreshold; got != 900 {
		t.Fatalf("default area threshold %g", got)
	}
}

func TestTrackerIgnoresBogusMatchIDs(t *testing.T) {
	f := newFixture(t)
	tr := NewTracker(f.store, []search.Match{{SetID: -1}, {SetID: 1 << 30}}, Params{})
	if tr.Remaining() != 0 {
		t.Fatal("bogus match IDs should be dropped")
	}
	st := tr.Step(make([]float64, 256))
	if st.Remaining != 0 || st.PA != 0 || !st.NeedsCloud {
		t.Fatalf("empty tracker step: %+v", st)
	}
}

func TestPredictorRiseRule(t *testing.T) {
	p := NewPredictor(PredictorParams{})
	p.Observe(0.2)
	if p.Anomalous() {
		t.Fatal("single observation should not trigger")
	}
	for _, v := range []float64{0.25, 0.40, 0.48, 0.52, 0.52} {
		p.Observe(v)
	}
	if !p.Anomalous() {
		t.Fatalf("sustained rise 0.2→0.52 should trigger (rise=%.2f)", p.Rise())
	}
}

func TestPredictorIgnoresTransientBlip(t *testing.T) {
	p := NewPredictor(PredictorParams{})
	for _, v := range []float64{0, 0, 0, 0.22, 0, 0, 0, 0.2, 0, 0} {
		p.Observe(v)
	}
	if p.Anomalous() {
		t.Fatalf("isolated P_A blips should not trigger (rise=%.2f smoothed=%.2f)",
			p.Rise(), p.Smoothed())
	}
}

func TestPredictorAbsoluteRule(t *testing.T) {
	p := NewPredictor(PredictorParams{})
	p.Observe(0.55)
	p.Observe(0.56)
	if !p.Anomalous() {
		t.Fatal("P_A above 0.5 should trigger")
	}
}

func TestPredictorStableLowPA(t *testing.T) {
	p := NewPredictor(PredictorParams{})
	for _, v := range []float64{0.22, 0.25, 0.21, 0.24, 0.23} {
		p.Observe(v)
	}
	if p.Anomalous() {
		t.Fatal("flat low P_A should not trigger")
	}
}

func TestPredictorAccessors(t *testing.T) {
	p := NewPredictor(PredictorParams{})
	if p.Current() != 0 || p.Rise() != 0 {
		t.Fatal("empty predictor aggregates should be 0")
	}
	p.Observe(0.1)
	p.Observe(0.3)
	if p.Current() != 0.3 {
		t.Fatalf("Current = %g", p.Current())
	}
	if h := p.History(); len(h) != 2 || h[0] != 0.1 {
		t.Fatalf("History = %v", h)
	}
	p.Reset()
	if len(p.History()) != 0 {
		t.Fatal("Reset did not clear history")
	}
}

func BenchmarkStepArea100(b *testing.B) {
	f := newFixture(b)
	wins := f.stream(synth.Normal, 0, 3000, 20)
	s := search.NewSearcher(f.store, search.Params{})
	res, _ := s.Algorithm1(wins[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTracker(f.store, res.Matches, Params{})
		tr.Step(wins[1])
	}
}

func BenchmarkStepCorr100(b *testing.B) {
	f := newFixture(b)
	wins := f.stream(synth.Normal, 0, 3000, 20)
	s := search.NewSearcher(f.store, search.Params{})
	res, _ := s.Algorithm1(wins[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTracker(f.store, res.Matches, Params{Method: CorrMethod})
		tr.Step(wins[1])
	}
}

func TestHorizonExpiry(t *testing.T) {
	f := newFixture(t)
	wins := f.stream(synth.Normal, 0, 3000, 20)
	res := f.searchFirst(t, wins)
	tr := NewTracker(f.store, res.Matches, Params{HorizonWindows: 3, AreaThreshold: 1e12})
	if tr.HorizonLeft() != 3 {
		t.Fatalf("HorizonLeft = %d", tr.HorizonLeft())
	}
	for i := 1; i <= 3; i++ {
		st := tr.Step(wins[i])
		if st.Expired > 0 {
			t.Fatalf("expired before the horizon at iteration %d", i)
		}
	}
	if tr.HorizonLeft() != 0 {
		t.Fatalf("HorizonLeft after 3 steps = %d", tr.HorizonLeft())
	}
	st := tr.Step(wins[4])
	if st.Remaining != 0 || st.Expired == 0 {
		t.Fatalf("horizon did not expire signals: %+v", st)
	}
	unlimited := NewTracker(f.store, res.Matches, Params{})
	if unlimited.HorizonLeft() != -1 {
		t.Fatal("unlimited tracker should report -1")
	}
}

func TestSkipShiftsContinuations(t *testing.T) {
	f := newFixture(t)
	wins := f.stream(synth.Normal, 0, 3000, 20)
	res := f.searchFirst(t, wins)
	// Tracker A steps through windows 1..4 normally; tracker B skips
	// 3 windows and steps window 4 directly. Their window-4 area
	// measurements must agree for signals alive in both.
	a := NewTracker(f.store, res.Matches, Params{AreaThreshold: 1e12})
	for i := 1; i <= 4; i++ {
		a.Step(wins[i])
	}
	b := NewTracker(f.store, res.Matches, Params{AreaThreshold: 1e12})
	b.Skip(3)
	b.Step(wins[4])
	ta, tb := a.Tracked(), b.Tracked()
	for i := range ta {
		if ta[i].Alive && tb[i].Alive {
			if ta[i].LastArea != tb[i].LastArea {
				t.Fatalf("signal %d: area %g vs %g after skip", i, ta[i].LastArea, tb[i].LastArea)
			}
		}
	}
	b.Skip(-5) // no-op
	if b.Iteration() != 4 {
		t.Fatalf("negative skip changed iteration: %d", b.Iteration())
	}
}
