package track

// PredictorParams configures the anomaly decision rule. The paper's
// rule (§VI-B): "Each time-step of the input signal is compared with
// the set of correlated signals to estimate the anomaly probability,
// which if increasing is classified as an anomaly", with near-threshold
// increases deliberately classified as anomalous — maximising
// sensitivity at the cost of ≈15% false positives.
type PredictorParams struct {
	// AbsoluteThreshold classifies as anomalous whenever the smoothed
	// P_A reaches this level regardless of trend (default 0.55: above
	// the 0.5 tie produced when half of a region's covering
	// recordings are mislabelled).
	AbsoluteThreshold float64
	// RiseThreshold classifies as anomalous when the smoothed P_A
	// has risen by at least this much from its initial level
	// (default 0.2 — the "near-threshold anomaly probability
	// increases" the paper counts as anomalous, which is also why
	// its false-positive rate sits near 15%).
	RiseThreshold float64
	// MinObservations is the minimum number of P_A estimates before
	// a positive decision is allowed (default 2).
	MinObservations int
	// SmoothWindow is the trailing-mean width applied to the P_A
	// trajectory before thresholding (default 3). Tracking sets are
	// finite samples, so a single-iteration P_A blip — one spurious
	// anomalous match surviving one step — must not flip the
	// decision; only sustained levels and sustained rises count.
	SmoothWindow int
}

// DefaultPredictorParams returns the paper-tuned decision rule.
func DefaultPredictorParams() PredictorParams {
	return PredictorParams{
		AbsoluteThreshold: 0.55,
		RiseThreshold:     0.25,
		MinObservations:   2,
		SmoothWindow:      3,
	}
}

func (p PredictorParams) withDefaults() PredictorParams {
	d := DefaultPredictorParams()
	if p.AbsoluteThreshold <= 0 {
		p.AbsoluteThreshold = d.AbsoluteThreshold
	}
	if p.RiseThreshold <= 0 {
		p.RiseThreshold = d.RiseThreshold
	}
	if p.MinObservations <= 0 {
		p.MinObservations = d.MinObservations
	}
	if p.SmoothWindow <= 0 {
		p.SmoothWindow = d.SmoothWindow
	}
	return p
}

// Predictor accumulates per-iteration anomaly probabilities and issues
// the anomaly / normal decision.
type Predictor struct {
	params  PredictorParams
	history []float64
}

// NewPredictor returns a predictor with the given parameters
// (zero-valued fields take defaults).
func NewPredictor(params PredictorParams) *Predictor {
	return &Predictor{params: params.withDefaults()}
}

// Observe records the anomaly probability of one tracking iteration.
func (p *Predictor) Observe(pa float64) {
	p.history = append(p.history, pa)
}

// History returns the recorded P_A trajectory.
func (p *Predictor) History() []float64 {
	out := make([]float64, len(p.history))
	copy(out, p.history)
	return out
}

// Current returns the latest P_A, or 0 before any observation.
func (p *Predictor) Current() float64 {
	if len(p.history) == 0 {
		return 0
	}
	return p.history[len(p.history)-1]
}

// smoothedAt returns the trailing mean of the trajectory ending at
// index i (window truncated at the start).
func (p *Predictor) smoothedAt(i int) float64 {
	lo := i - p.params.SmoothWindow + 1
	if lo < 0 {
		lo = 0
	}
	var sum float64
	for _, v := range p.history[lo : i+1] {
		sum += v
	}
	return sum / float64(i+1-lo)
}

// Smoothed returns the trailing-mean P_A at the latest observation.
func (p *Predictor) Smoothed() float64 {
	if len(p.history) == 0 {
		return 0
	}
	return p.smoothedAt(len(p.history) - 1)
}

// PeakSmoothed returns the maximum of the smoothed trajectory. The
// anomaly decision latches on this value: once the framework has
// sustained a high anomaly probability the alarm has fired, and a
// later decay (e.g. a refreshed correlation set landing on poorly
// annotated recordings) does not retract it.
func (p *Predictor) PeakSmoothed() float64 {
	var peak float64
	for i := range p.history {
		if s := p.smoothedAt(i); s > peak {
			peak = s
		}
	}
	return peak
}

// Rise returns the increase from the initial P_A to the peak of the
// smoothed trajectory.
func (p *Predictor) Rise() float64 {
	if len(p.history) == 0 {
		return 0
	}
	base := p.history[0]
	peak := base
	for i := range p.history {
		if s := p.smoothedAt(i); s > peak {
			peak = s
		}
	}
	return peak - base
}

// Anomalous reports the current decision: the smoothed P_A reached the
// absolute threshold at some point (latched alarm), or a sustained
// rise of at least RiseThreshold since tracking began.
func (p *Predictor) Anomalous() bool {
	if len(p.history) < p.params.MinObservations {
		return false
	}
	if p.PeakSmoothed() >= p.params.AbsoluteThreshold {
		return true
	}
	return p.Rise() >= p.params.RiseThreshold
}

// Reset clears the observation history (used after a cloud refresh if
// the caller wants per-segment decisions).
func (p *Predictor) Reset() {
	p.history = p.history[:0]
}
