// Package kernel is the correlation kernel engine under the cloud
// search: the innermost arithmetic of the whole system. The paper's
// cloud tier is one operation repeated billions of times — the
// normalized cross-correlation ω of a z-normalized query against every
// offset of every stored signal-set — and this package supplies the
// two ways to compute it fast:
//
//   - unrolled scalar dot products (Dot, DotPairwise) for the sparse
//     skip walk, where Algorithm 1 touches only a fraction of offsets;
//   - an FFT profiler (Engine, Profiler) that computes a signal-set's
//     FULL ω numerator profile in O(L log L) — one cached-plan real
//     transform of the stored region, one per unique query, one
//     multiply + inverse per pair — for the exhaustive baseline and
//     for dense stretches of the skip walk.
//
// The search layer (internal/search) decides per set and per query
// which kernel runs; this package only does arithmetic and caches FFT
// plans per size.
package kernel

// Dot returns Σ a[i]·b[i] over len(a) elements (len(b) must be at
// least len(a)). The loop is 8-way unrolled over four independent
// accumulators, which both feeds the CPU's FMA ports and — by
// splitting the sum into four interleaved sub-sums — already tightens
// the worst-case rounding error versus a single running sum.
func Dot(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += a[i]*b[i] + a[i+4]*b[i+4]
		s1 += a[i+1]*b[i+1] + a[i+5]*b[i+5]
		s2 += a[i+2]*b[i+2] + a[i+6]*b[i+6]
		s3 += a[i+3]*b[i+3] + a[i+7]*b[i+7]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Dot4 is the 4-way unrolled variant — marginally less register
// pressure, for short windows where the 8-wide tail dominates.
func Dot4(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// DotPairwise returns Σ a[i]·b[i] with pairwise (cascade) summation:
// the products are reduced as a balanced binary tree of block sums, so
// the rounding error grows as O(log n) instead of the O(n) of a
// running sum. It is the error-budget reference the faster kernels are
// tested against, and the right choice when a caller accumulates over
// very long windows.
func DotPairwise(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	return pairwise(a, b, n)
}

// pairwiseBlock is the base-case size below which a straight unrolled
// dot is used; 128 doubles keeps the recursion shallow while the
// per-block error stays tiny.
const pairwiseBlock = 128

func pairwise(a, b []float64, n int) float64 {
	if n <= pairwiseBlock {
		return Dot(a[:n], b)
	}
	half := n / 2
	return pairwise(a[:half], b[:half], half) + pairwise(a[half:n], b[half:n], n-half)
}
