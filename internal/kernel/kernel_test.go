package kernel

import (
	"encoding/binary"
	"math"
	"testing"

	"emap/internal/rng"
)

// naiveDot is the single-accumulator reference all kernels are
// compared against.
func naiveDot(a, b []float64) float64 {
	var acc float64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc
}

// dotTol is the acceptable divergence between two summation orders of
// the same products: proportional to Σ|aᵢbᵢ|, the standard backward
// error bound.
func dotTol(a, b []float64) float64 {
	var mag float64
	for i := range a {
		mag += math.Abs(a[i] * b[i])
	}
	return 1e-12*mag + 1e-300
}

func randVec(r *rng.Source, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.NormFloat64() * 100
	}
	return out
}

// TestDotKernelsMatchNaive sweeps lengths across every unroll tail.
func TestDotKernelsMatchNaive(t *testing.T) {
	r := rng.New(3)
	for n := 0; n <= 70; n++ {
		a, b := randVec(r, n), randVec(r, n)
		want := naiveDot(a, b)
		tol := dotTol(a, b)
		for name, k := range map[string]func(a, b []float64) float64{
			"Dot": Dot, "Dot4": Dot4, "DotPairwise": DotPairwise,
		} {
			if got := k(a, b); math.Abs(got-want) > tol {
				t.Fatalf("%s(n=%d) = %g, naive = %g (tol %g)", name, n, got, want, tol)
			}
		}
	}
	// Long vectors cross the pairwise recursion threshold.
	for _, n := range []int{pairwiseBlock, pairwiseBlock + 1, 1000, 4096} {
		a, b := randVec(r, n), randVec(r, n)
		want := naiveDot(a, b)
		if got := DotPairwise(a, b); math.Abs(got-want) > dotTol(a, b) {
			t.Fatalf("DotPairwise(n=%d) = %g, naive = %g", n, got, want)
		}
	}
}

// TestDotUsesPrefixOfB: kernels contract over len(a) with a longer b.
func TestDotUsesPrefixOfB(t *testing.T) {
	r := rng.New(5)
	a, b := randVec(r, 13), randVec(r, 40)
	want := naiveDot(a, b[:13])
	for name, k := range map[string]func(a, b []float64) float64{
		"Dot": Dot, "Dot4": Dot4, "DotPairwise": DotPairwise,
	} {
		if got := k(a, b); math.Abs(got-want) > dotTol(a, b[:13]) {
			t.Fatalf("%s over prefix = %g, want %g", name, got, want)
		}
	}
}

// FuzzDot feeds arbitrary float pairs through every kernel and
// requires agreement with the naive loop within the summation-order
// error bound. NaN/Inf inputs are skipped — ω is computed over
// bandpass-filtered finite samples by construction.
func FuzzDot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	seed := make([]byte, 16*33)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 16
		a, b := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:]))
			b[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:]))
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				t.Skip("non-finite input")
			}
			// Extreme magnitudes overflow the product; the scan's
			// inputs are µV-scale by construction.
			if math.Abs(a[i]) > 1e150 || math.Abs(b[i]) > 1e150 {
				t.Skip("out-of-domain magnitude")
			}
		}
		want := naiveDot(a, b)
		tol := dotTol(a, b)
		if got := Dot(a, b); math.Abs(got-want) > tol {
			t.Fatalf("Dot = %g, naive = %g (n=%d)", got, want, n)
		}
		if got := Dot4(a, b); math.Abs(got-want) > tol {
			t.Fatalf("Dot4 = %g, naive = %g (n=%d)", got, want, n)
		}
		if got := DotPairwise(a, b); math.Abs(got-want) > tol {
			t.Fatalf("DotPairwise = %g, naive = %g (n=%d)", got, want, n)
		}
	})
}

// TestProfilerMatchesNaiveSlidingDots: the FFT profile must equal the
// scalar sliding dot product at every offset.
func TestProfilerMatchesNaiveSlidingDots(t *testing.T) {
	e := NewEngine()
	r := rng.New(9)
	for _, tc := range []struct{ segLen, n int }{
		{10, 3}, {100, 17}, {1000, 256}, {1255, 256}, {300, 300}, {2, 2},
	} {
		seg := randVec(r, tc.segLen)
		q := randVec(r, tc.n)
		p := e.Profiler(tc.segLen)
		segSpec := make([]complex128, p.Bins())
		qSpec := make([]complex128, p.Bins())
		work := make([]complex128, p.Bins())
		profile := make([]float64, p.M())
		p.Spectrum(segSpec, seg)
		p.Spectrum(qSpec, q)
		p.Correlate(profile, segSpec, qSpec, work)
		for beta := 0; beta+tc.n <= tc.segLen; beta++ {
			want := naiveDot(q, seg[beta:beta+tc.n])
			if math.Abs(profile[beta]-want) > 1e-7*(1+math.Abs(want)) {
				t.Fatalf("segLen=%d n=%d β=%d: profile %g, naive %g", tc.segLen, tc.n, beta, profile[beta], want)
			}
		}
	}
}

// TestEngineCachesPlans: repeated profilers of one size share a plan;
// Prewarm builds ahead of first use.
func TestEngineCachesPlans(t *testing.T) {
	e := NewEngine()
	p1 := e.Profiler(1000)
	p2 := e.Profiler(1024)
	if p1.M() != 1024 || p2.M() != 1024 {
		t.Fatalf("plan sizes %d, %d, want 1024", p1.M(), p2.M())
	}
	if e.Sizes() != 1 {
		t.Fatalf("cached %d sizes, want 1", e.Sizes())
	}
	e.Prewarm(2048, 2048, 1)
	if e.Sizes() != 3 { // 1024, 2048, 2
		t.Fatalf("cached %d sizes after prewarm, want 3", e.Sizes())
	}
}

func BenchmarkDot(b *testing.B) {
	r := rng.New(1)
	x, y := randVec(r, 256), randVec(r, 256)
	var sink float64
	for _, bc := range []struct {
		name string
		k    func(a, b []float64) float64
	}{{"naive", naiveDot}, {"unroll8", Dot}, {"unroll4", Dot4}, {"pairwise", DotPairwise}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += bc.k(x, y)
			}
		})
	}
	_ = sink
}
