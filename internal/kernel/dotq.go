package kernel

// Quantized kernels: the compressed-domain arithmetic of the tiered
// MDB store (internal/mdb). Warm/cold records hold int16 counts on a
// per-record scale; the ω numerator over a window is then
//
//	Σ q[i]·x[i] = qscale·xscale · Σ qc[i]·xc[i]
//
// so the inner loop runs entirely on int16 loads with int64
// accumulation — a quarter of the memory traffic of the float64 path,
// which is what the scan is bound by. int64 cannot overflow here:
// |count| ≤ 2^15, so each product is < 2^30 and 2^33 terms would be
// needed to reach 2^63; windows are a few thousand samples.

// DotQ returns Σ a[i]·b[i] over len(a) int16 elements (len(b) must be
// at least len(a)), accumulated in int64. 8-way unrolled like Dot;
// integer addition is associative, so unlike the float kernels the
// split accumulators change nothing but speed.
func DotQ(a, b []int16) int64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += int64(a[i])*int64(b[i]) + int64(a[i+4])*int64(b[i+4])
		s1 += int64(a[i+1])*int64(b[i+1]) + int64(a[i+5])*int64(b[i+5])
		s2 += int64(a[i+2])*int64(b[i+2]) + int64(a[i+6])*int64(b[i+6])
		s3 += int64(a[i+3])*int64(b[i+3]) + int64(a[i+7])*int64(b[i+7])
	}
	for ; i < n; i++ {
		s0 += int64(a[i]) * int64(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// DotQF returns Σ q[i]·float64(c[i]) over len(q) elements (len(c) must
// be at least len(q)): the mixed-domain dot the quantized search path
// uses for exact rescoring — the float query against the stored
// counts, with the record scale folded in by the caller. Multiplying
// by the scale AFTER the sum keeps the result bit-identical to
// Dot(q, dequantize(c))·1 only up to reassociation, so the caller
// treats it as its own kernel, not as a float-path replay.
func DotQF(q []float64, c []int16) float64 {
	n := len(q)
	c = c[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += q[i]*float64(c[i]) + q[i+4]*float64(c[i+4])
		s1 += q[i+1]*float64(c[i+1]) + q[i+5]*float64(c[i+5])
		s2 += q[i+2]*float64(c[i+2]) + q[i+6]*float64(c[i+6])
		s3 += q[i+3]*float64(c[i+3]) + q[i+7]*float64(c[i+7])
	}
	for ; i < n; i++ {
		s0 += q[i] * float64(c[i])
	}
	return (s0 + s1) + (s2 + s3)
}
