package kernel

import (
	"sync"

	"emap/internal/fft"
)

// Engine caches FFT plans per transform size. Building a plan costs
// O(m) trig and table setup — trivial once, ruinous if paid per scan —
// so one Engine is shared by every scan over a store (per tenant in
// the cloud tier, sized off its slice length). All methods are safe
// for concurrent use; the plans handed out are immutable.
type Engine struct {
	mu    sync.RWMutex
	plans map[int]*fft.RealPlan
}

// NewEngine returns an empty plan cache.
func NewEngine() *Engine {
	return &Engine{plans: make(map[int]*fft.RealPlan)}
}

// Prewarm builds and caches plans for the given transform sizes (each
// rounded up to a power of two ≥ 2), so the first scan doesn't pay
// plan construction. Typical use passes the sizes implied by the
// store's slice length.
func (e *Engine) Prewarm(sizes ...int) {
	for _, n := range sizes {
		if n > 0 {
			e.plan(PlanSizeFor(n))
		}
	}
}

// Sizes returns how many distinct plan sizes are cached.
func (e *Engine) Sizes() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.plans)
}

// PlanSizeFor returns the transform size a segment of segLen real
// samples profiles at: the next power of two, floored at 2
// (RealPlan's minimum). Callers use it to cost a dense pass before
// asking for the Profiler.
func PlanSizeFor(segLen int) int {
	m := fft.NextPow2(segLen)
	if m < 2 {
		m = 2
	}
	return m
}

func (e *Engine) plan(m int) *fft.RealPlan {
	e.mu.RLock()
	p := e.plans[m]
	e.mu.RUnlock()
	if p != nil {
		return p
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if p = e.plans[m]; p != nil {
		return p
	}
	p, err := fft.NewRealPlan(m)
	if err != nil {
		// PlanSizeFor only produces valid powers of two; reaching here
		// is a programming error, not an input condition.
		panic(err)
	}
	e.plans[m] = p
	return p
}

// Profiler computes sliding-dot profiles for segments up to segLen
// samples through one cached plan. It is a small value handle — copy
// freely; the shared plan underneath is concurrency-safe.
func (e *Engine) Profiler(segLen int) Profiler {
	return Profiler{plan: e.plan(PlanSizeFor(segLen))}
}

// Profiler is a fixed-size correlation profiler: Spectrum transforms
// real inputs (segment or query) into half-spectra, Correlate turns a
// segment spectrum and a query spectrum into the full profile of
// sliding dot products. Buffers are caller-owned so a scan worker can
// run allocation-free.
type Profiler struct {
	plan *fft.RealPlan
}

// M returns the transform size (profile buffers must hold M floats).
func (p Profiler) M() int { return p.plan.Len() }

// Bins returns the half-spectrum length (spectrum buffers must hold
// Bins complex values).
func (p Profiler) Bins() int { return p.plan.Bins() }

// Spectrum writes the half-spectrum of x (zero-padded to M) into
// spec[:Bins]. x must not be longer than M.
func (p Profiler) Spectrum(spec []complex128, x []float64) {
	p.plan.Forward(spec, x)
}

// Correlate computes dst[β] = Σ_j q[j]·seg[β+j] for every offset β
// from the two half-spectra: one pointwise multiply (seg ⊙ conj(q))
// into work, one inverse real transform into dst. Offsets where the
// query window runs past the real segment read the zero padding —
// callers use dst[0..segLen−len(q)]. work must hold Bins complex
// values (it is scratch, destroyed by the inverse); dst must hold M
// floats. segSpec and qSpec are read-only and reusable across calls —
// the amortization the engine exists for: one segment transform per
// (set, length-group), one query transform per unique query, one
// multiply+inverse per pair.
func (p Profiler) Correlate(dst []float64, segSpec, qSpec, work []complex128) {
	bins := p.plan.Bins()
	s, q, w := segSpec[:bins], qSpec[:bins], work[:bins]
	for k := range w {
		w[k] = s[k] * complex(real(q[k]), -imag(q[k]))
	}
	p.plan.Inverse(dst, w)
}
