package iofault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestOSPassthrough exercises the production filesystem end to end:
// what it writes is what the OS reads back.
func TestOSPassthrough(t *testing.T) {
	fs := OS()
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := fs.Truncate(path, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ = fs.ReadFile(path); string(got) != "he" {
		t.Fatalf("after truncate: %q", got)
	}
	next := filepath.Join(filepath.Dir(path), "g")
	if err := fs.Rename(path, next); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(next); err != nil {
		t.Fatal(err)
	}
}

// TestFaultyWriteVolatileUntilSync pins the core durability model:
// written bytes are invisible to ReadFile until Sync, and Close
// without Sync discards them.
func TestFaultyWriteVolatileUntilSync(t *testing.T) {
	fs := NewFaulty()
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(path); len(got) != 0 {
		t.Fatalf("unsynced bytes visible: %q", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(path); string(got) != "abc" {
		t.Fatalf("after sync: %q", got)
	}
	// Unsynced tail dies with Close.
	if _, err := f.Write([]byte("zzz")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(path); string(got) != "abc" {
		t.Fatalf("close flushed unsynced bytes: %q", got)
	}
}

// TestFaultyScheduledErrors fires a one-shot error on the nth write,
// sync and rename; the operation after each proceeds normally.
func TestFaultyScheduledErrors(t *testing.T) {
	fs := NewFaulty()
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	boom := errors.New("boom")
	fs.FailAt(OpWrite, 2, boom)
	fs.FailAt(OpSync, 1, boom)
	fs.FailAt(OpRename, 1, boom)

	f, _ := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, boom) {
		t.Fatalf("write 2 = %v, want boom", err)
	}
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync 1 = %v, want boom", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2: %v", err)
	}
	// The failed write applied nothing: only "a" and "c" are durable.
	if got, _ := fs.ReadFile(path); string(got) != "ac" {
		t.Fatalf("durable bytes %q, want \"ac\"", got)
	}
	if err := fs.Rename(path, path+"2"); !errors.Is(err, boom) {
		t.Fatalf("rename 1 = %v, want boom", err)
	}
	if err := fs.Rename(path, path+"2"); err != nil {
		t.Fatalf("rename 2: %v", err)
	}
}

// TestFaultyShortWrite applies a prefix of the write and reports
// io.ErrShortWrite.
func TestFaultyShortWrite(t *testing.T) {
	fs := NewFaulty()
	path := filepath.Join(t.TempDir(), "f")
	fs.ShortWriteAt(1, 3)
	f, _ := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write = (%d, %v), want (3, short write)", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(path); string(got) != "abc" {
		t.Fatalf("durable bytes %q, want \"abc\"", got)
	}
}

// TestFaultyCrashAtWrite kills the filesystem at a write: nothing of
// that write or any unsynced predecessor survives, and every later
// operation fails with ErrCrashed.
func TestFaultyCrashAtWrite(t *testing.T) {
	fs := NewFaulty()
	path := filepath.Join(t.TempDir(), "f")
	fs.CrashAt(OpWrite, 3)
	f, _ := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("a"))
	f.Sync()
	f.Write([]byte("b")) // buffered, never synced
	if _, err := f.Write([]byte("c")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write = %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() = false after crash point")
	}
	if _, err := f.Write([]byte("d")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync = %v", err)
	}
	if err := fs.Rename(path, path+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename = %v", err)
	}
	if _, err := fs.OpenFile(path, os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v", err)
	}
	// A fresh OS view over the same path sees only the synced prefix —
	// what a restarted process finds.
	got, err := OS().ReadFile(path)
	if err != nil || string(got) != "a" {
		t.Fatalf("post-crash durable state %q, %v; want \"a\"", got, err)
	}
}

// TestFaultyCrashDuringSync flushes only the scheduled prefix of the
// pending buffer — the torn tail.
func TestFaultyCrashDuringSync(t *testing.T) {
	fs := NewFaulty()
	path := filepath.Join(t.TempDir(), "f")
	f, _ := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("abc"))
	f.Sync()
	fs.CrashDuringSyncAt(2, 2)
	f.Write([]byte("defgh"))
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash sync = %v", err)
	}
	got, err := OS().ReadFile(path)
	if err != nil || string(got) != "abcde" {
		t.Fatalf("torn state %q, %v; want \"abcde\"", got, err)
	}
}

// TestFaultyCrashAtRename leaves both names untouched — the
// pre-rename crash point of an atomic replace.
func TestFaultyCrashAtRename(t *testing.T) {
	fs := NewFaulty()
	dir := t.TempDir()
	oldp, newp := filepath.Join(dir, "old"), filepath.Join(dir, "new")
	os.WriteFile(oldp, []byte("O"), 0o644)
	os.WriteFile(newp, []byte("N"), 0o644)
	fs.CrashAt(OpRename, 1)
	if err := fs.Rename(oldp, newp); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename = %v", err)
	}
	o, _ := os.ReadFile(oldp)
	n, _ := os.ReadFile(newp)
	if string(o) != "O" || string(n) != "N" {
		t.Fatalf("crash applied the rename: old=%q new=%q", o, n)
	}
}

// TestFaultyOpCounters proves schedules can be aimed with Ops.
func TestFaultyOpCounters(t *testing.T) {
	fs := NewFaulty()
	path := filepath.Join(t.TempDir(), "f")
	f, _ := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("a"))
	f.Write([]byte("b"))
	f.Sync()
	if got := fs.Ops(OpWrite); got != 2 {
		t.Fatalf("Ops(write) = %d, want 2", got)
	}
	if got := fs.Ops(OpSync); got != 1 {
		t.Fatalf("Ops(sync) = %d, want 1", got)
	}
	if got := fs.Ops(OpOpen); got != 1 {
		t.Fatalf("Ops(open) = %d, want 1", got)
	}
}
