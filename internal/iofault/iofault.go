// Package iofault is a small filesystem seam with deterministic fault
// injection for durability testing. Production code takes an FS and
// runs on the passthrough OS implementation; tests substitute a Faulty
// filesystem that injects scheduled write/sync/rename errors, short
// writes, and — the crash-safety workhorse — process-death crash
// points that freeze the on-disk state exactly as a kill -9 or power
// loss would have left it.
//
// The Faulty filesystem models the durability contract of a real OS:
// bytes passed to Write live in a volatile buffer (the page cache)
// until Sync flushes them to the backing file; a crash discards every
// unflushed buffer, and a crash scheduled mid-Sync flushes only a
// prefix of the pending bytes — the torn tail a write-ahead log must
// tolerate on replay. After a crash every operation fails with
// ErrCrashed; the test then reopens the same directory through a clean
// OS filesystem and observes exactly what a restarted process would.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrCrashed is returned by every operation on a Faulty filesystem
// after its scheduled crash point fired: the simulated process is
// dead, and nothing more reaches disk.
var ErrCrashed = errors.New("iofault: filesystem crashed")

// File is the slice of *os.File durable storage needs: sequential
// writes, a durability barrier, and close.
type File interface {
	io.Writer
	// Sync flushes buffered writes to stable storage. On the OS
	// filesystem it is fsync; on a Faulty filesystem it is the moment
	// buffered bytes survive a crash.
	Sync() error
	Close() error
}

// FS is the filesystem surface the WAL runs on. All paths are
// ordinary OS paths; the Faulty implementation wraps the same
// directory tree the OS implementation would touch, so a test can
// crash one filesystem and reopen the files through another.
type FS interface {
	// OpenFile opens a file for writing (the WAL appends; flag is the
	// usual os.O_* mask).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the file's durable contents ([]byte, as
	// os.ReadFile). Buffered-but-unsynced writes are NOT visible:
	// replay sees only what a crash would have left.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file; removing a missing file is the caller's
	// error to interpret (os semantics).
	Remove(name string) error
	// Truncate cuts the file to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
	// MkdirAll creates the directory path.
	MkdirAll(path string, perm os.FileMode) error
}

// osFS is the passthrough production filesystem.
type osFS struct{}

// OS returns the passthrough filesystem over the real OS.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldname, newname string) error         { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Op names one operation class for fault scheduling.
type Op int

const (
	OpWrite Op = iota
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpOpen
	opCount
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpOpen:
		return "open"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// fault is one scheduled injection: when the op counter for Kind
// reaches At (1-based), the action fires.
type fault struct {
	at      int64
	err     error // non-nil: fail the op with this error, once
	crash   bool  // crash the filesystem at this op
	partial int   // crash-during-sync: flush this many pending bytes first; short write: apply this many bytes
	short   bool  // short write: apply partial bytes then fail (no crash)
}

// Faulty is an FS whose writes are volatile until synced and whose
// faults fire on a deterministic schedule. It is safe for concurrent
// use. The zero value is not usable; construct with NewFaulty.
type Faulty struct {
	mu     sync.Mutex
	faults map[Op][]fault
	dead   bool

	// Writes, Syncs and Renames count operations that reached the
	// filesystem (including ones a fault then failed); tests use them
	// to aim schedules.
	opsSeen [opCount]int64
}

// NewFaulty returns a fault-injectable filesystem over the real OS
// directory tree, with no faults scheduled.
func NewFaulty() *Faulty {
	return &Faulty{faults: make(map[Op][]fault)}
}

// FailAt schedules the nth operation of kind op (1-based, counted
// across all files) to fail with err, without applying. The fault
// fires once; the op after it proceeds normally.
func (f *Faulty) FailAt(op Op, n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[op] = append(f.faults[op], fault{at: int64(n), err: err})
}

// ShortWriteAt schedules the nth Write to apply only the first k bytes
// to the volatile buffer and then fail with io.ErrShortWrite — the
// partial-append a full disk or signal-interrupted write produces.
func (f *Faulty) ShortWriteAt(n, k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[OpWrite] = append(f.faults[OpWrite], fault{at: int64(n), short: true, partial: k})
}

// CrashAt schedules the simulated process death at the nth operation
// of kind op: the operation does not apply (a write buffers nothing, a
// rename leaves both names as they were, a sync flushes nothing), all
// unsynced buffers are discarded, and every subsequent operation fails
// with ErrCrashed.
func (f *Faulty) CrashAt(op Op, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[op] = append(f.faults[op], fault{at: int64(n), crash: true})
}

// CrashDuringSyncAt schedules the crash mid-way through the nth Sync:
// only the first k pending bytes reach the backing file before the
// process dies — the torn frame a power loss mid-fsync leaves behind.
func (f *Faulty) CrashDuringSyncAt(n, k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[OpSync] = append(f.faults[OpSync], fault{at: int64(n), crash: true, partial: k})
}

// Crashed reports whether the crash point has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// Ops returns how many operations of the given kind have been issued.
func (f *Faulty) Ops(op Op) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opsSeen[op]
}

// begin counts one operation and resolves the fault that fires on it,
// if any. It returns the fault and whether the filesystem is already
// dead. Caller must not hold f.mu.
func (f *Faulty) begin(op Op) (fault, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return fault{}, true, ErrCrashed
	}
	f.opsSeen[op]++
	n := f.opsSeen[op]
	scheduled := f.faults[op]
	for i, ft := range scheduled {
		if ft.at == n {
			// One-shot: remove the fired fault.
			f.faults[op] = append(scheduled[:i:i], scheduled[i+1:]...)
			if ft.crash {
				f.dead = true
			}
			return ft, false, nil
		}
	}
	return fault{}, false, nil
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	ft, dead, err := f.begin(OpOpen)
	if dead {
		return nil, err
	}
	if ft.crash {
		return nil, ErrCrashed
	}
	if ft.err != nil {
		return nil, ft.err
	}
	inner, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		return nil, ErrCrashed
	}
	return os.ReadFile(name)
}

func (f *Faulty) Rename(oldname, newname string) error {
	ft, dead, err := f.begin(OpRename)
	if dead {
		return err
	}
	if ft.crash {
		return ErrCrashed
	}
	if ft.err != nil {
		return ft.err
	}
	return os.Rename(oldname, newname)
}

func (f *Faulty) Remove(name string) error {
	ft, dead, err := f.begin(OpRemove)
	if dead {
		return err
	}
	if ft.crash {
		return ErrCrashed
	}
	if ft.err != nil {
		return ft.err
	}
	return os.Remove(name)
}

func (f *Faulty) Truncate(name string, size int64) error {
	ft, dead, err := f.begin(OpTruncate)
	if dead {
		return err
	}
	if ft.crash {
		return ErrCrashed
	}
	if ft.err != nil {
		return ft.err
	}
	return os.Truncate(name, size)
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	return os.MkdirAll(path, perm)
}

// faultyFile buffers writes until Sync — the volatile page cache of
// the simulated machine. One file's buffer is independent of the
// others'; the filesystem-wide crash discards them all.
type faultyFile struct {
	fs    *Faulty
	inner *os.File

	bmu     sync.Mutex
	pending []byte
	closed  bool
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	ft, dead, err := ff.fs.begin(OpWrite)
	if dead {
		return 0, err
	}
	ff.bmu.Lock()
	defer ff.bmu.Unlock()
	if ff.closed {
		return 0, os.ErrClosed
	}
	switch {
	case ft.crash:
		// Process death mid-write: nothing of this write reaches even
		// the page cache, and everything unsynced is gone.
		return 0, ErrCrashed
	case ft.short:
		k := ft.partial
		if k > len(p) {
			k = len(p)
		}
		ff.pending = append(ff.pending, p[:k]...)
		return k, io.ErrShortWrite
	case ft.err != nil:
		return 0, ft.err
	}
	ff.pending = append(ff.pending, p...)
	return len(p), nil
}

func (ff *faultyFile) Sync() error {
	ft, dead, err := ff.fs.begin(OpSync)
	if dead {
		return err
	}
	ff.bmu.Lock()
	defer ff.bmu.Unlock()
	if ff.closed {
		return os.ErrClosed
	}
	if ft.crash {
		// Crash mid-sync: a prefix of the pending bytes reaches the
		// backing file (CrashDuringSyncAt), or none (CrashAt). Either
		// way the process is dead afterwards.
		k := ft.partial
		if k > len(ff.pending) {
			k = len(ff.pending)
		}
		if k > 0 {
			if _, werr := ff.inner.Write(ff.pending[:k]); werr == nil {
				ff.inner.Sync()
			}
		}
		ff.pending = nil
		ff.inner.Close()
		return ErrCrashed
	}
	if ft.err != nil {
		return ft.err
	}
	if len(ff.pending) > 0 {
		if _, werr := ff.inner.Write(ff.pending); werr != nil {
			return werr
		}
		ff.pending = ff.pending[:0]
	}
	return ff.inner.Sync()
}

// Close discards unsynced bytes — closing a file does not make its
// writes durable, exactly as with a real page cache — and closes the
// backing file. Callers that need the bytes must Sync first.
func (ff *faultyFile) Close() error {
	ff.bmu.Lock()
	defer ff.bmu.Unlock()
	if ff.closed {
		return os.ErrClosed
	}
	ff.closed = true
	ff.pending = nil
	return ff.inner.Close()
}
