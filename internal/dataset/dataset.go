// Package dataset emulates the five public EEG corpora the paper
// combines into its mega-database (references [21]–[25]): PhysioNet,
// the TUH EEG corpus, the UCI epileptic-seizure set, BNCI Horizon 2020
// and the Zwoliński epilepsy database.
//
// The real corpora cannot ship with this reproduction, so each emulator
// draws synthetic recordings from the shared synth.Generator while
// reproducing the property that matters to EMAP's pipeline: the corpora
// disagree about everything — native sampling rates (128–512 Hz),
// recording lengths, class mixes, labelling styles and noise levels —
// and the MDB construction stage must normalise all of them
// (bandpass → resample to 256 Hz → slice → label).
package dataset

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"emap/internal/edf"
	"emap/internal/rng"
	"emap/internal/synth"
)

// Corpus describes one emulated source dataset.
type Corpus struct {
	// Name is the short identifier (e.g. "physionet").
	Name string
	// Description summarises what the real corpus contains.
	Description string
	// Rate is the corpus's native sampling frequency in Hz.
	Rate float64
	// DurSeconds is the length of each emulated recording.
	DurSeconds float64
	// ClassMix gives the relative frequency of each class;
	// weights need not sum to 1.
	ClassMix map[synth.Class]float64
	// Noise overrides the generator's noise ratio when positive —
	// corpora differ in recording quality.
	Noise float64
	// OnsetAnnotated reports whether the corpus provides seizure
	// onset annotations (only PhysioNet-like data does; the paper
	// notes the other anomalies lack "highly annotated datasets").
	OnsetAnnotated bool
}

// Standard returns the five corpus emulations in a stable order.
func Standard() []*Corpus {
	return []*Corpus{
		{
			Name:           "physionet",
			Description:    "PhysioNet (CHB-MIT style): long scalp recordings with annotated seizure onsets",
			Rate:           256,
			DurSeconds:     120,
			ClassMix:       map[synth.Class]float64{synth.Normal: 0.5, synth.Seizure: 0.5},
			Noise:          0.18,
			OnsetAnnotated: true,
		},
		{
			Name:        "tuh",
			Description: "TUH EEG corpus style: hospital archive, mixed pathologies, coarse labels",
			Rate:        250,
			DurSeconds:  90,
			ClassMix: map[synth.Class]float64{
				synth.Normal: 0.4, synth.Seizure: 0.2,
				synth.Encephalopathy: 0.25, synth.Stroke: 0.15,
			},
			Noise: 0.25,
		},
		{
			Name:        "uci",
			Description: "UCI epileptic-seizure recognition style: short pre-segmented excerpts",
			Rate:        178,
			DurSeconds:  12,
			ClassMix:    map[synth.Class]float64{synth.Normal: 0.6, synth.Seizure: 0.4},
			Noise:       0.20,
		},
		{
			Name:        "bnci",
			Description: "BNCI Horizon 2020 style: healthy-subject BCI recordings, high rate",
			Rate:        512,
			DurSeconds:  60,
			ClassMix:    map[synth.Class]float64{synth.Normal: 1},
			Noise:       0.20,
		},
		{
			Name:        "zwolinski",
			Description: "Zwoliński epilepsy database style: epilepsy with whole-recording labels",
			Rate:        128,
			DurSeconds:  100,
			ClassMix: map[synth.Class]float64{
				synth.Normal: 0.35, synth.Seizure: 0.35,
				synth.Encephalopathy: 0.15, synth.Stroke: 0.15,
			},
			Noise: 0.28,
		},
	}
}

// ByName returns the standard corpus with the given name.
func ByName(name string) (*Corpus, error) {
	for _, c := range Standard() {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("dataset: unknown corpus %q", name)
}

// Generate draws n recordings from the corpus using g's archetype
// pools. The draw is deterministic in (g's seed, corpus name, n): the
// class sequence derives from a corpus-named stream. Seizure
// recordings from onset-annotated corpora are cropped around the onset
// so both preictal and ictal data enter the MDB.
func (c *Corpus) Generate(g *synth.Generator, n int) []*synth.Recording {
	r := rng.New(g.Config().Seed).Derive("corpus-" + c.Name)
	classes := c.classSlice()
	recs := make([]*synth.Recording, 0, n)
	for i := 0; i < n; i++ {
		class := classes[r.Intn(len(classes))]
		arch := r.Intn(g.Archetypes())
		opt := synth.InstanceOpts{
			DurSeconds: c.DurSeconds,
			Rate:       c.Rate,
			NoiseRatio: c.Noise,
		}
		if class == synth.Seizure {
			// Place the crop so the recording spans the late
			// preictal window and the onset when it fits.
			onset := g.CanonicalOnset(synth.Seizure)
			span := int(c.DurSeconds * synth.BaseRate)
			lead := span * 2 / 3
			off := onset - lead
			if off < 0 {
				off = 0
			}
			opt.OffsetSamples = off + r.Intn(1+span/4)
		}
		rec := g.Instance(class, arch, opt)
		if !c.OnsetAnnotated {
			// Coarse labelling: the paper annotates the complete
			// signal as anomalous when onsets are unavailable.
			rec.Onset = -1
		}
		rec.ID = fmt.Sprintf("%s/%s", c.Name, rec.ID)
		recs = append(recs, rec)
	}
	return recs
}

// classSlice expands ClassMix into a 100-slot lookup table.
func (c *Corpus) classSlice() []synth.Class {
	var total float64
	keys := make([]synth.Class, 0, len(c.ClassMix))
	for k, w := range c.ClassMix {
		if w > 0 {
			keys = append(keys, k)
			total += w
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) == 0 || total <= 0 {
		return []synth.Class{synth.Normal}
	}
	out := make([]synth.Class, 0, 100)
	for _, k := range keys {
		cnt := int(c.ClassMix[k] / total * 100)
		for i := 0; i < cnt; i++ {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		out = append(out, keys[0])
	}
	return out
}

// metaString encodes recording metadata for the EDF RecordingID field.
func metaString(rec *synth.Recording) string {
	return fmt.Sprintf("class=%s;arch=%d;onset=%d", rec.Class, rec.Archetype, rec.Onset)
}

// parseMeta decodes metaString output.
func parseMeta(s string) (class synth.Class, arch, onset int, err error) {
	class, arch, onset = synth.Normal, 0, -1
	for _, kv := range strings.Split(s, ";") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			continue
		}
		switch parts[0] {
		case "class":
			found := false
			for _, c := range synth.Classes {
				if c.String() == parts[1] {
					class, found = c, true
					break
				}
			}
			if !found {
				return 0, 0, 0, fmt.Errorf("dataset: unknown class %q", parts[1])
			}
		case "arch":
			if arch, err = strconv.Atoi(parts[1]); err != nil {
				return 0, 0, 0, fmt.Errorf("dataset: bad arch: %w", err)
			}
		case "onset":
			if onset, err = strconv.Atoi(parts[1]); err != nil {
				return 0, 0, 0, fmt.Errorf("dataset: bad onset: %w", err)
			}
		}
	}
	return class, arch, onset, nil
}

// Export writes recordings as EDF-style files under dir, one file per
// recording, returning the written paths. It exercises the same
// ingest path the paper's pyedflib-based flow used.
func Export(dir string, recs []*synth.Recording) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(recs))
	for i, rec := range recs {
		f := &edf.File{
			PatientID:   rec.ID,
			RecordingID: metaString(rec),
			StartTime:   time.Unix(0, 0).UTC(),
			RecordDur:   1,
			Signals: []*edf.Signal{{
				Label:      "EEG",
				PhysDim:    "uV",
				SampleRate: rec.Rate,
				Samples:    rec.Samples,
			}},
		}
		path := filepath.Join(dir, fmt.Sprintf("rec%05d.emapedf", i))
		if err := edf.WriteFile(path, f); err != nil {
			return nil, fmt.Errorf("dataset: exporting %s: %w", rec.ID, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// Import reads every EDF-style file under dir back into recordings.
// Sample counts may exceed the original due to record padding; the
// waveform content is bit-identical up to 16-bit quantisation.
func Import(dir string) ([]*synth.Recording, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var recs []*synth.Recording
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".emapedf") {
			continue
		}
		f, err := edf.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("dataset: importing %s: %w", e.Name(), err)
		}
		if len(f.Signals) == 0 {
			continue
		}
		class, arch, onset, err := parseMeta(f.RecordingID)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", e.Name(), err)
		}
		recs = append(recs, &synth.Recording{
			ID:        f.PatientID,
			Class:     class,
			Archetype: arch,
			Rate:      f.Signals[0].SampleRate,
			Samples:   f.Signals[0].Samples,
			Onset:     onset,
		})
	}
	return recs, nil
}
