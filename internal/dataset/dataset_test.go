package dataset

import (
	"math"
	"testing"

	"emap/internal/synth"
)

func testGen() *synth.Generator {
	return synth.NewGenerator(synth.Config{Seed: 7, ArchetypesPerClass: 4})
}

func TestStandardCorpora(t *testing.T) {
	cs := Standard()
	if len(cs) != 5 {
		t.Fatalf("corpus count %d, want 5 (paper refs [21]-[25])", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		if names[c.Name] {
			t.Fatalf("duplicate corpus %q", c.Name)
		}
		names[c.Name] = true
		if c.Rate <= 0 || c.DurSeconds <= 0 {
			t.Fatalf("corpus %q has invalid rate/duration", c.Name)
		}
		if len(c.ClassMix) == 0 {
			t.Fatalf("corpus %q has empty class mix", c.Name)
		}
	}
	// Rates must differ so the resampling path is exercised.
	rates := map[float64]bool{}
	for _, c := range cs {
		rates[c.Rate] = true
	}
	if len(rates) < 4 {
		t.Fatalf("corpora share too many rates: %v", rates)
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("tuh")
	if err != nil || c.Name != "tuh" {
		t.Fatalf("ByName(tuh) = %v, %v", c, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown corpus should error")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	c, _ := ByName("physionet")
	a := c.Generate(testGen(), 6)
	b := c.Generate(testGen(), 6)
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Class != b[i].Class || a[i].Archetype != b[i].Archetype {
			t.Fatalf("recording %d differs between runs", i)
		}
		if len(a[i].Samples) != len(b[i].Samples) {
			t.Fatalf("recording %d length differs", i)
		}
		for j := range a[i].Samples {
			if a[i].Samples[j] != b[i].Samples[j] {
				t.Fatalf("recording %d sample %d differs", i, j)
			}
		}
	}
}

func TestGenerateNativeRate(t *testing.T) {
	g := testGen()
	for _, c := range Standard() {
		recs := c.Generate(g, 2)
		for _, rec := range recs {
			if rec.Rate != c.Rate {
				t.Fatalf("%s produced rate %g, want %g", c.Name, rec.Rate, c.Rate)
			}
			wantLen := int(c.DurSeconds * c.Rate)
			if math.Abs(float64(len(rec.Samples)-wantLen)) > 2 {
				t.Fatalf("%s length %d, want ≈%d", c.Name, len(rec.Samples), wantLen)
			}
		}
	}
}

func TestGenerateClassMixRespected(t *testing.T) {
	g := testGen()
	c, _ := ByName("bnci") // normal-only corpus
	for _, rec := range c.Generate(g, 10) {
		if rec.Class != synth.Normal {
			t.Fatalf("bnci produced %v", rec.Class)
		}
	}
	tuh, _ := ByName("tuh")
	seen := map[synth.Class]int{}
	for _, rec := range tuh.Generate(g, 60) {
		seen[rec.Class]++
	}
	if len(seen) < 3 {
		t.Fatalf("tuh should mix ≥3 classes, saw %v", seen)
	}
}

func TestOnsetAnnotationPolicy(t *testing.T) {
	g := testGen()
	phys, _ := ByName("physionet")
	foundOnset := false
	for _, rec := range phys.Generate(g, 20) {
		if rec.Class == synth.Seizure && rec.Onset >= 0 {
			foundOnset = true
		}
	}
	if !foundOnset {
		t.Fatal("physionet seizures should carry onsets")
	}
	zw, _ := ByName("zwolinski")
	for _, rec := range zw.Generate(g, 20) {
		if rec.Onset != -1 {
			t.Fatalf("zwolinski recording %s has onset %d, want -1 (coarse labels)", rec.ID, rec.Onset)
		}
	}
}

func TestGenerateIDsCarryCorpus(t *testing.T) {
	g := testGen()
	c, _ := ByName("uci")
	for _, rec := range c.Generate(g, 3) {
		if len(rec.ID) < 4 || rec.ID[:4] != "uci/" {
			t.Fatalf("recording ID %q missing corpus prefix", rec.ID)
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	g := testGen()
	c, _ := ByName("physionet")
	recs := c.Generate(g, 4)
	dir := t.TempDir()
	paths, err := Export(dir, recs)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	if len(paths) != 4 {
		t.Fatalf("exported %d files", len(paths))
	}
	got, err := Import(dir)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("imported %d recordings", len(got))
	}
	for i, rec := range got {
		orig := recs[i]
		if rec.Class != orig.Class || rec.Archetype != orig.Archetype || rec.Onset != orig.Onset {
			t.Fatalf("metadata mismatch: %+v vs %+v", rec, orig)
		}
		if rec.Rate != orig.Rate {
			t.Fatalf("rate mismatch: %g vs %g", rec.Rate, orig.Rate)
		}
		if len(rec.Samples) < len(orig.Samples) {
			t.Fatalf("lost samples: %d < %d", len(rec.Samples), len(orig.Samples))
		}
		// Quantisation error bound: one digital count.
		var maxErr float64
		for j := range orig.Samples {
			if e := math.Abs(rec.Samples[j] - orig.Samples[j]); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 0.1 { // generous: range ±~200 µV / 65535 counts ≈ 0.006
			t.Fatalf("round-trip error %g µV too large", maxErr)
		}
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := Import("/nonexistent-dir-xyz"); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestParseMeta(t *testing.T) {
	class, arch, onset, err := parseMeta("class=stroke;arch=2;onset=-1")
	if err != nil || class != synth.Stroke || arch != 2 || onset != -1 {
		t.Fatalf("parseMeta = %v %d %d %v", class, arch, onset, err)
	}
	if _, _, _, err := parseMeta("class=bogus"); err == nil {
		t.Fatal("bad class should error")
	}
	if _, _, _, err := parseMeta("arch=xyz"); err == nil {
		t.Fatal("bad arch should error")
	}
	// Unknown keys and empty segments are ignored.
	class, _, _, err = parseMeta("foo=bar;;class=seizure")
	if err != nil || class != synth.Seizure {
		t.Fatalf("tolerant parse failed: %v %v", class, err)
	}
}
