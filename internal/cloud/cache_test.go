package cloud

import (
	"bytes"
	"net"
	"testing"
	"time"

	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/search"
	"emap/internal/synth"
)

// roundTrip sends one upload over conn and returns the reply frame.
func roundTrip(t *testing.T, conn net.Conn, id uint32, payload []byte) proto.Frame {
	t.Helper()
	if err := proto.WriteFrameV2(conn, proto.TypeUpload, id, payload); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := proto.ReadFrameAny(conn)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCacheReplyByteIdentical: a cached reply for the same quantized
// window must be byte-for-byte the reply a fresh search produces.
func TestCacheReplyByteIdentical(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	counts, scale := proto.Quantize(input.Samples[1024:1280])
	upload := &proto.Upload{Seq: 7, Scale: scale, Samples: counts}
	payload := proto.EncodeUpload(upload)

	first := roundTrip(t, cConn, 1, payload)
	second := roundTrip(t, cConn, 2, payload)
	if first.Type != proto.TypeCorrSet || second.Type != proto.TypeCorrSet {
		t.Fatalf("reply types %d, %d", first.Type, second.Type)
	}
	if hits, misses := srv.Metrics.CacheHits.Load(), srv.Metrics.CacheMisses.Load(); hits != 1 || misses != 1 {
		t.Fatalf("cache hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !bytes.Equal(first.Payload, second.Payload) {
		t.Fatal("cached reply is not byte-identical to the first reply")
	}
	// And both must equal what a from-scratch search computes.
	fresh, err := srv.Search(upload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second.Payload, proto.EncodeCorrSet(fresh)) {
		t.Fatal("cached reply diverges from a fresh search of the same window")
	}
}

// TestCacheNotSharedAcrossStoresOrParams: the cache must never serve a
// correlation set computed against a different store or with different
// search parameters. Caches are owned per server, so a second server —
// even one seeing the exact same upload — must miss and answer from
// its own search.
func TestCacheNotSharedAcrossStoresOrParams(t *testing.T) {
	storeA, g := testStore(t)
	// A different store: same generator family, different population.
	var recs []*synth.Recording
	for i := 0; i < 3; i++ {
		recs = append(recs, g.Instance(synth.Seizure, 0, synth.InstanceOpts{
			OffsetSamples: i * 4000, DurSeconds: 60}))
	}
	storeB, err := mdb.Build(recs, mdb.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	counts, scale := proto.Quantize(input.Samples[1024:1280])
	upload := &proto.Upload{Seq: 3, Scale: scale, Samples: counts}
	payload := proto.EncodeUpload(upload)

	warm, err := NewServer(storeA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wc, ws := net.Pipe()
	defer wc.Close()
	go warm.HandleConn(ws)
	roundTrip(t, wc, 1, payload) // populate warm's cache

	for name, srv := range map[string]*Server{
		"other store":  mustServer(t, storeB, Config{}),
		"other params": mustServer(t, storeA, Config{Search: search.Params{TopK: 3}}),
	} {
		cConn, sConn := net.Pipe()
		go srv.HandleConn(sConn)
		reply := roundTrip(t, cConn, 1, payload)
		if hits := srv.Metrics.CacheHits.Load(); hits != 0 {
			t.Fatalf("%s: %d cache hits for a first-ever upload", name, hits)
		}
		fresh, err := srv.Search(upload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reply.Payload, proto.EncodeCorrSet(fresh)) {
			t.Fatalf("%s: reply does not match that server's own search", name)
		}
		cConn.Close()
	}
}

func mustServer(t *testing.T, store *mdb.Store, cfg Config) *Server {
	t.Helper()
	srv, err := NewServer(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestCacheLRUBound: the cache must stay within CacheSize entries,
// evicting the least recently used.
func TestCacheLRUBound(t *testing.T) {
	c := newCorrCache(2)
	c.putAt(0, "a", nil)
	c.putAt(0, "b", nil)
	if _, _, ok := c.get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.putAt(0, "c", nil)
	if c.len() != 2 {
		t.Fatalf("cache grew to %d entries, cap 2", c.len())
	}
	if _, _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
}

// TestCacheResetRejectsStalePut: a result computed before a reset (an
// ingest flushed the cache) must not be stored afterwards — it would
// re-poison the cache with pre-ingest correlation sets.
func TestCacheResetRejectsStalePut(t *testing.T) {
	c := newCorrCache(4)
	_, gen, _ := c.get("k") // search observes the generation…
	c.reset()               // …an ingest flushes the cache…
	c.putAt(gen, "k", nil)  // …the stale result must be dropped.
	if c.len() != 0 {
		t.Fatal("stale put survived a cache reset")
	}
	_, gen, _ = c.get("k")
	c.putAt(gen, "k", nil)
	if c.len() != 1 {
		t.Fatal("fresh put rejected")
	}
}

// TestFingerprintToleratesRequantization: the same analogue window
// quantized twice through the wire format (fresh scale each time) must
// land on one cache key, while a different window must not.
func TestFingerprintToleratesRequantization(t *testing.T) {
	_, g := testStore(t)
	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]

	counts1, scale1 := proto.Quantize(window)
	w1 := proto.Dequantize(counts1, scale1)
	counts2, scale2 := proto.Quantize(w1) // second trip through the wire
	w2 := proto.Dequantize(counts2, scale2)

	k1, ok1 := windowFingerprint(w1)
	k2, ok2 := windowFingerprint(w2)
	if !ok1 || !ok2 {
		t.Fatal("fingerprint rejected a live window")
	}
	if k1 != k2 {
		t.Fatal("re-quantization noise split the cache key")
	}
	k3, _ := windowFingerprint(input.Samples[512:768])
	if k3 == k1 {
		t.Fatal("distinct windows collided on one cache key")
	}
	if _, ok := windowFingerprint(make([]float64, 256)); ok {
		t.Fatal("flat window produced a fingerprint")
	}
}
