package cloud

import (
	"fmt"
	"time"

	"emap/internal/proto"
	"emap/internal/search"
)

// pending is one upload waiting for a batch search pass. The
// dispatching request goroutine blocks on its group's done channel;
// the batch leader fills entries (or err) for every member before
// closing it.
type pending struct {
	window []float64
	key    string // cache fingerprint, "" when uncacheable or caching is off
	// gen is the tenant cache generation observed at lookup time; the
	// result is cached only if no ingest reset the cache in between.
	gen     int64
	entries []proto.CorrEntry
	err     error
}

// batchGroup is one forming batch: the leader created it, followers
// append themselves while it is still their tenant's forming group,
// and everyone waits on done.
type batchGroup struct {
	pendings []*pending
	done     chan struct{}
}

// dispatch runs p through tenant t's batching collector and blocks
// until its result is filled in.
//
// The collector is a group-commit: the first upload to arrive becomes
// the batch leader, publishes the group so later uploads can join, and
// only then waits for a search slot. Under load every upload that
// queues behind busy workers piles into the leader's group — one shard
// pass serves them all — while a lone request on an idle server passes
// straight through with no added latency (the default BatchWindow of
// zero adds no artificial wait).
//
// Each tenant owns its collector: only same-tenant uploads coalesce,
// because one batched pass walks exactly one tenant's shards. The
// worker pool underneath is shared across tenants.
func (e *Engine) dispatch(t *tenant, p *pending) {
	t.batchMu.Lock()
	if g := t.forming; g != nil && len(g.pendings) < e.cfg.MaxBatch {
		g.pendings = append(g.pendings, p)
		t.batchMu.Unlock()
		<-g.done
		return
	}
	g := &batchGroup{pendings: []*pending{p}, done: make(chan struct{})}
	if e.cfg.MaxBatch > 1 {
		t.forming = g
	}
	t.batchMu.Unlock()

	if e.cfg.BatchWindow > 0 && e.cfg.MaxBatch > 1 {
		// An explicit collection window trades a bounded delay for
		// bigger batches even when workers are free. With MaxBatch 1
		// no joiner could ever form a batch, so no wait either. The
		// wait aborts when the server stops, so Shutdown drains the
		// already-collected group immediately instead of sitting out
		// the window.
		timer := time.NewTimer(e.cfg.BatchWindow)
		select {
		case <-timer.C:
		case <-e.done:
			timer.Stop()
		}
	}
	e.sem <- struct{}{} // while the leader queues here, followers keep joining
	defer func() { <-e.sem }()

	t.batchMu.Lock()
	if t.forming == g {
		t.forming = nil // seal: no joiners past this point
	}
	batch := g.pendings
	t.batchMu.Unlock()

	// The leader searches on behalf of every joiner, so a panic in the
	// search path must not strand them on g.done: recover, fail the
	// whole batch (one 5xx each), and let the pool keep serving.
	func() {
		defer close(g.done)
		defer func() {
			if r := recover(); r != nil {
				e.Metrics.Panics.Add(1)
				err := fmt.Errorf("internal error: batch search panicked: %v", r)
				for _, p := range batch {
					if p.err == nil && p.entries == nil {
						p.err = err
					}
				}
			}
		}()
		e.searchBatch(t, batch)
	}()
}

// searchBatch runs one batched search over tenant t's store and fans
// the per-query results back out to every pending upload, populating
// the tenant's cache on the way.
func (e *Engine) searchBatch(t *tenant, batch []*pending) {
	e.Metrics.Batches.Add(1)
	e.Metrics.BatchedRequests.Add(int64(len(batch)))
	t.metrics.Batches.Add(1)
	t.metrics.BatchedRequests.Add(int64(len(batch)))
	windows := make([][]float64, len(batch))
	for i, p := range batch {
		windows[i] = p.window
	}
	br, err := t.searcher.AlgorithmN(windows)
	if err != nil {
		for _, p := range batch {
			p.err = err
		}
		return
	}
	e.Metrics.Evaluations.Add(int64(br.Evaluated))
	t.metrics.Evaluations.Add(int64(br.Evaluated))
	// Deduplicated queries share one *Result (pointer equality, see
	// search.BatchResult); assemble each distinct result's
	// continuations once and fan the shared, read-only slice out.
	assembled := make(map[*search.Result][]proto.CorrEntry, len(batch))
	for i, p := range batch {
		res := br.Results[i]
		entries, ok := assembled[res]
		if !ok {
			entries = e.assembleEntries(t, res, len(p.window))
			assembled[res] = entries
		}
		p.entries = entries
		if t.cache != nil && p.key != "" {
			t.cache.putAt(p.gen, p.key, p.entries)
		}
	}
}
