package cloud

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"emap/internal/iofault"
	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/wal"
)

// crashRecSamples is the deterministic waveform of crash-test record i
// — both the ingest path and the baseline rebuild draw from it, and
// query windows are cut from it.
func crashRecSamples(i, n int) []float64 {
	samples := make([]float64, n)
	for j := range samples {
		samples[j] = 45*math.Sin(2*math.Pi*float64(j)/101) +
			12*math.Sin(2*math.Pi*float64(j)/17+float64(i)) +
			3*math.Cos(2*math.Pi*float64(j)/7*float64(i+1))
	}
	return samples
}

func crashIngest(i int) *proto.Ingest {
	counts, scale := proto.Quantize(crashRecSamples(i, 1024))
	return &proto.Ingest{Seq: uint32(i), RecordID: fmt.Sprintf("crash-%02d", i), Onset: -1, Scale: scale, Samples: counts}
}

// crashScenario is one injected crash point of the kill-restart
// acceptance test.
type crashScenario struct {
	name string
	// schedule arms the fault for a crash landing around ingest n
	// (1-based).
	schedule func(fs *iofault.Faulty, n int)
	// evictAfter, when > 0, evicts the tenant after that many acked
	// ingests — the path that exercises checkpoint crash points.
	evictAfter int
}

// TestKillRestartAcceptance is the acceptance harness of the
// durability tentpole: with WALSync=always, ingest recordings against
// a fault-injected filesystem, hard-crash at a randomized injected
// crash point, recover over the same directories, and assert that (a)
// every acknowledged ingest is present — and nothing else — and (b)
// searches against the recovered store are bit-identical to an
// uncrashed baseline holding exactly the acknowledged set.
func TestKillRestartAcceptance(t *testing.T) {
	const totalIngests = 6
	rng := rand.New(rand.NewSource(7)) // randomized-but-reproducible crash points

	scenarios := []crashScenario{
		{
			// The crash lands mid-append: the frame never reaches even
			// the page cache.
			name:     "append-crash",
			schedule: func(fs *iofault.Faulty, n int) { fs.CrashAt(iofault.OpWrite, n) },
		},
		{
			// The crash lands before the fsync barrier: the append
			// buffered but nothing is durable.
			name:     "pre-sync",
			schedule: func(fs *iofault.Faulty, n int) { fs.CrashAt(iofault.OpSync, n) },
		},
		{
			// The crash lands mid-fsync: a torn frame — a few bytes of
			// the record — reaches the platter and replay must cut it.
			name:     "append-mid-frame",
			schedule: func(fs *iofault.Faulty, n int) { fs.CrashDuringSyncAt(n, 5) },
		},
		{
			// The crash lands inside the eviction checkpoint, before
			// the rename: snapshot AND full log survive; replay must
			// be idempotent.
			name:       "pre-rename",
			schedule:   func(fs *iofault.Faulty, n int) { fs.CrashAt(iofault.OpRename, 1) },
			evictAfter: 3,
		},
		{
			// The crash lands after the checkpoint rename (at the log
			// reopen): snapshot plus empty log survive.
			name: "post-checkpoint",
			// Opens: tenant log open (1), checkpoint temp (2), reopen (3).
			schedule:   func(fs *iofault.Faulty, n int) { fs.CrashAt(iofault.OpOpen, 3) },
			evictAfter: 3,
		},
	}

	for _, sc := range scenarios {
		// Crash around a random ingest, but always after the first (so
		// every scenario has at least one ack to preserve) and inside
		// the run.
		n := 2 + rng.Intn(totalIngests-2)
		t.Run(sc.name, func(t *testing.T) {
			runCrashScenario(t, sc, n, totalIngests)
		})
	}
}

func runCrashScenario(t *testing.T, sc crashScenario, crashAt, totalIngests int) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	cfg := Config{SliceLen: 256, CacheSize: -1}

	// Phase 1: serve ingests on the fault-injected filesystem.
	fs := iofault.NewFaulty()
	sc.schedule(fs, crashAt)
	reg, err := mdb.NewRegistry(snapDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := cfg
	wcfg.WALDir, wcfg.WALFS, wcfg.WALSync = walDir, fs, wal.SyncAlways
	srv, err := NewRegistryServer(reg, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	var acked []int
	for i := 0; i < totalIngests; i++ {
		if sc.evictAfter > 0 && len(acked) == sc.evictAfter {
			// The eviction persists the snapshot (real OS) and
			// checkpoints the log (faulty FS) — where the rename and
			// reopen crash points live.
			reg.Evict("ward-a")
		}
		if _, err := srv.Ingest("ward-a", crashIngest(i)); err != nil {
			continue // not acked; the crash (or its aftermath) refused it
		}
		acked = append(acked, i)
	}
	srv.Close()
	if !fs.Crashed() {
		t.Fatalf("crash point never fired (acked %d of %d)", len(acked), totalIngests)
	}
	if len(acked) == 0 {
		t.Fatal("scenario acked nothing; nothing to verify")
	}
	if len(acked) == totalIngests && sc.evictAfter == 0 {
		t.Fatal("crash lost no acks and evicted nothing; crash point mis-aimed")
	}

	// Phase 2: restart over the same directories through a clean OS
	// view — exactly what a rebooted process sees.
	reg2, err := mdb.NewRegistry(snapDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.WALDir, rcfg.WALSync = walDir, wal.SyncAlways
	recovered, err := NewRegistryServer(reg2, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := reg2.Open("ward-a")
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	for _, i := range acked {
		if _, ok := store.Record(fmt.Sprintf("crash-%02d", i)); !ok {
			t.Fatalf("acked ingest crash-%02d lost", i)
		}
	}
	if got := store.NumRecords(); got != len(acked) {
		t.Fatalf("recovered store holds %d records, want exactly the %d acked", got, len(acked))
	}

	// Phase 3: uncrashed baseline — the acked set ingested in the same
	// order into a fresh server — must answer searches bit-identically.
	baseline, err := NewServer(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range acked {
		if _, err := baseline.Ingest("", crashIngest(i)); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 4; q++ {
		src := acked[q%len(acked)]
		window := crashRecSamples(src, 1024)[256*(q%3) : 256*(q%3)+256]
		counts, scale := proto.Quantize(window)
		up := &proto.Upload{Seq: uint32(100 + q), Scale: scale, Samples: counts}
		want, err := baseline.Search(up)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recovered.SearchTenant("ward-a", up)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Entries, want.Entries) {
			t.Fatalf("query %d: recovered search differs from baseline\n got: %d entries\nwant: %d entries",
				q, len(got.Entries), len(want.Entries))
		}
	}
	recovered.Close()
}
