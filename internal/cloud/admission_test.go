package cloud

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"emap/internal/proto"
)

// fakeClock is a manually advanced time source for token-bucket tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTokenBucketRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTokenBucket(2, 3, clk.now) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if b.allow() {
		t.Fatal("4th immediate request admitted past the burst")
	}
	clk.advance(500 * time.Millisecond) // +1 token
	if !b.allow() {
		t.Fatal("refilled token refused")
	}
	if b.allow() {
		t.Fatal("admitted with an empty bucket")
	}
	clk.advance(time.Hour) // refill caps at burst
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("post-cap token %d refused", i)
		}
	}
	if b.allow() {
		t.Fatal("burst cap not enforced after a long idle stretch")
	}
}

func TestTokenBucketDefaultBurst(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTokenBucket(0.5, 0, clk.now)
	// A fractional rate with no explicit burst still gets the floor
	// of 8 tokens, so quiet tenants are never refused on a burst.
	for i := 0; i < 8; i++ {
		if !b.allow() {
			t.Fatalf("floor-burst token %d refused", i)
		}
	}
	if b.allow() {
		t.Fatal("9th token admitted past the floor burst")
	}
}

// uploadFrame builds a v3 upload frame for in-process ServeFrame calls.
func uploadFrame(seq uint32, priority uint8) proto.Frame {
	window := make([]int16, 256)
	for i := range window {
		window[i] = int16(7*i%251 - 125)
	}
	return proto.Frame{
		Version: proto.Version3,
		Type:    proto.TypeUpload,
		ID:      seq,
		Payload: proto.EncodeUpload(&proto.Upload{Seq: seq, Scale: 1, Samples: window, Priority: priority}),
	}
}

// TestTenantRateLimited: a tenant that exhausts its token bucket gets
// CodeRateLimited refusals, surfaced in both the registry-wide and the
// per-tenant counters; an untouched tenant is unaffected.
func TestTenantRateLimited(t *testing.T) {
	srv, err := NewServer(nil, Config{
		Workers:     2,
		TenantRate:  0.001, // effectively no refill within the test
		TenantBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := uint32(0); i < 2; i++ {
		typ, payload := srv.ServeFrame(uploadFrame(i, proto.PriRoutine))
		if typ != proto.TypeCorrSet {
			em, _ := proto.DecodeError(payload)
			t.Fatalf("upload %d inside the burst refused: type %d (%v)", i, typ, em)
		}
	}
	typ, payload := srv.ServeFrame(uploadFrame(2, proto.PriRoutine))
	if typ != proto.TypeError {
		t.Fatalf("3rd upload admitted past the burst (type %d)", typ)
	}
	em, err := proto.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if em.Code != CodeRateLimited {
		t.Fatalf("refusal code %d, want %d", em.Code, CodeRateLimited)
	}
	if got := srv.Metrics.RateLimited.Load(); got != 1 {
		t.Fatalf("registry-wide RateLimited = %d, want 1", got)
	}
	tm := srv.MetricsFor("")
	if tm == nil || tm.RateLimited.Load() != 1 {
		t.Fatalf("per-tenant RateLimited missing: %+v", tm)
	}
	// Another tenant owns its own bucket: it is admitted even while
	// the default tenant is refused.
	other := uploadFrame(3, proto.PriRoutine)
	other.Tenant = "ward-2"
	if typ, _ := srv.ServeFrame(other); typ != proto.TypeCorrSet {
		t.Fatalf("fresh tenant refused (type %d); buckets are not per-tenant", typ)
	}
	// Rate-limit refusals are admission decisions, not server errors.
	if got := srv.Metrics.Errors.Load(); got != 0 {
		t.Fatalf("rate limiting counted %d server errors", got)
	}
}

// TestSaturationShedsRoutineKeepsAnomaly is the admission-control SLO
// test: with the search backlog saturated, routine-priority uploads
// are shed with CodeShed while an anomaly-priority upload is served,
// promptly. Deterministic: saturation is built from uploads held
// in-flight by the search hook, not from timing.
func TestSaturationShedsRoutineKeepsAnomaly(t *testing.T) {
	const shedQueue = 2
	srv, err := NewServer(nil, Config{
		Workers:   1,
		ShedQueue: shedQueue,
		CacheSize: -1, // every upload must reach the backlog
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	gate := make(chan struct{})
	entered := make(chan uint8, 8)
	srv.backlogHook = func(u *proto.Upload) {
		entered <- u.Priority
		if u.Priority == proto.PriRoutine {
			<-gate // pin routine uploads inside the backlog
		}
	}

	// Saturate: shedQueue routine uploads enter the backlog and park.
	var wg sync.WaitGroup
	for i := 0; i < shedQueue; i++ {
		wg.Add(1)
		go func(seq uint32) {
			defer wg.Done()
			if typ, _ := srv.ServeFrame(uploadFrame(seq, proto.PriRoutine)); typ != proto.TypeCorrSet {
				t.Errorf("parked upload %d failed (type %d)", seq, typ)
			}
		}(uint32(i))
	}
	for i := 0; i < shedQueue; i++ {
		if pri := <-entered; pri != proto.PriRoutine {
			t.Fatalf("saturating upload entered with priority %d", pri)
		}
	}

	// A routine upload now sheds immediately instead of queueing.
	typ, payload := srv.ServeFrame(uploadFrame(100, proto.PriRoutine))
	if typ != proto.TypeError {
		t.Fatalf("routine upload served under saturation (type %d)", typ)
	}
	if em, err := proto.DecodeError(payload); err != nil || em.Code != CodeShed {
		t.Fatalf("shed reply = %v / %v, want code %d", em, err, CodeShed)
	}

	// An anomaly-priority upload is admitted and answered while the
	// backlog is still pinned: shedding exists to protect exactly this
	// request's latency.
	start := time.Now()
	typ, _ = srv.ServeFrame(uploadFrame(101, proto.PriAnomaly))
	if typ != proto.TypeCorrSet {
		t.Fatalf("anomaly upload refused under saturation (type %d)", typ)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("anomaly upload took %v with the pool saturated", d)
	}
	if pri := <-entered; pri != proto.PriAnomaly {
		t.Fatalf("expected the anomaly upload in the backlog, saw priority %d", pri)
	}

	if got := srv.Metrics.Shed.Load(); got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	if tm := srv.MetricsFor(""); tm == nil || tm.Shed.Load() != 1 {
		t.Fatal("per-tenant Shed not counted")
	}

	close(gate)
	wg.Wait()
}

// TestMetricsSnapshotRaceSafe hammers Metrics.Snapshot and MetricsFor
// reads while live traffic mutates every counter; the race detector
// (CI runs -race) proves the snapshot path is synchronization-clean.
func TestMetricsSnapshotRaceSafe(t *testing.T) {
	srv, err := NewServer(nil, Config{Workers: 2, TenantRate: 50, ShedQueue: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := []string{"", "ward-1"}[w%2]
			for seq := uint32(0); !stop.Load(); seq++ {
				f := uploadFrame(seq, uint8(seq%2))
				f.Tenant = tenant
				srv.ServeFrame(f)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap := srv.Metrics.Snapshot()
				if snap.Requests < 0 || snap.SearchBacklog < 0 {
					t.Error("impossible snapshot values")
					return
				}
				if tm := srv.MetricsFor("ward-1"); tm != nil {
					tm.Snapshot()
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Registry-wide Requests is the transport's counter; in-process
	// ServeFrame traffic shows up in the per-tenant snapshots.
	tm := srv.MetricsFor("")
	if tm == nil || tm.Snapshot().Requests == 0 {
		t.Fatal("no traffic flowed during the race window")
	}
	snap := srv.Metrics.Snapshot()
	if snap.MeanLatency < 0 || snap.BatchSizeMean < 0 {
		t.Fatalf("derived snapshot figures broken: %+v", snap)
	}
}
