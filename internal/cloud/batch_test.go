package cloud

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"emap/internal/proto"
	"emap/internal/synth"
)

// TestBatchCoalescesQueuedUploads: concurrent distinct uploads on one
// connection must be served by fewer search passes than uploads — the
// group-commit collector coalesces whatever queues behind the single
// worker, and every reply still carries its own query's result.
func TestBatchCoalescesQueuedUploads(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{
		Workers:     1,
		BatchWindow: 200 * time.Millisecond,
		CacheSize:   -1, // isolate the collector from the cache
	})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	for id := uint32(1); id <= 3; id++ {
		// Offset each window by one sample so the three queries are
		// genuinely distinct (no dedup, no cache — pure batching).
		w := input.Samples[1024+id : 1280+id]
		if err := proto.WriteFrameV2(cConn, proto.TypeUpload, id, uploadFrom(t, w, id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		cConn.SetReadDeadline(time.Now().Add(10 * time.Second))
		f, err := proto.ReadFrameAny(cConn)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != proto.TypeCorrSet {
			t.Fatalf("reply %d: type %d", i, f.Type)
		}
		cs, err := proto.DecodeCorrSet(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Seq != f.ID {
			t.Fatalf("reply fan-out crossed wires: seq %d under frame ID %d", cs.Seq, f.ID)
		}
	}
	if batches := srv.Metrics.Batches.Load(); batches >= 3 {
		t.Fatalf("3 queued uploads took %d search passes; collector did not coalesce", batches)
	}
	if mean := srv.Metrics.BatchSizeMean(); mean <= 1 {
		t.Fatalf("BatchSizeMean = %g, want > 1", mean)
	}
}

// TestBatchServesIdenticalUploadsWithOneScan is the server-level scan
// amortization proof: B concurrent identical uploads through the
// batched path cost the ω evaluations of ONE upload — the batch search
// deduplicates them onto a single shard pass. (The correlation-set
// cache is disabled so the scans themselves are measured.)
func TestBatchServesIdenticalUploadsWithOneScan(t *testing.T) {
	store, g := testStore(t)
	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	counts, scale := proto.Quantize(input.Samples[1024:1280])

	// Baseline: the evaluation cost of this window searched alone.
	ref, err := NewServer(store, Config{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Search(&proto.Upload{Seq: 1, Scale: scale, Samples: counts}); err != nil {
		t.Fatal(err)
	}
	soloEvals := ref.Metrics.Evaluations.Load()
	if soloEvals == 0 {
		t.Fatal("baseline search evaluated nothing")
	}

	srv, err := NewServer(store, Config{
		Workers:     1,
		BatchWindow: 250 * time.Millisecond,
		CacheSize:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	const B = 4
	payload := proto.EncodeUpload(&proto.Upload{Seq: 1, Scale: scale, Samples: counts})
	for id := uint32(1); id <= B; id++ {
		if err := proto.WriteFrameV2(cConn, proto.TypeUpload, id, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < B; i++ {
		cConn.SetReadDeadline(time.Now().Add(10 * time.Second))
		f, err := proto.ReadFrameAny(cConn)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != proto.TypeCorrSet {
			t.Fatalf("reply %d: type %d", i, f.Type)
		}
	}
	if batches := srv.Metrics.Batches.Load(); batches != 1 {
		t.Fatalf("%d identical uploads took %d batches, want 1", B, batches)
	}
	if evals := srv.Metrics.Evaluations.Load(); evals != soloEvals {
		t.Fatalf("batch of %d identical uploads evaluated %d ω, want the one-upload cost %d",
			B, evals, soloEvals)
	}
}

// TestMaxBatchOneDisablesCoalescing: MaxBatch 1 must restore the
// one-search-per-upload behaviour.
func TestMaxBatchOneDisablesCoalescing(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{
		Workers: 1, MaxBatch: 1, BatchWindow: 50 * time.Millisecond, CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	for id := uint32(1); id <= 3; id++ {
		w := input.Samples[1024+id : 1280+id]
		if err := proto.WriteFrameV2(cConn, proto.TypeUpload, id, uploadFrom(t, w, id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		cConn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := proto.ReadFrameAny(cConn); err != nil {
			t.Fatal(err)
		}
	}
	if batches := srv.Metrics.Batches.Load(); batches != 3 {
		t.Fatalf("MaxBatch=1: %d batches for 3 uploads, want 3", batches)
	}
}

// TestShutdownCancelsBatchWindow: a batch leader sitting out a long
// collection window must abort the wait when the server stops, so a
// graceful drain is not delayed by up to a full BatchWindow.
func TestShutdownCancelsBatchWindow(t *testing.T) {
	store, g := testStore(t)
	const window = 30 * time.Second // would dwarf the drain budget below
	srv, err := NewServer(store, Config{
		Workers:     1,
		BatchWindow: window,
		CacheSize:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	w := input.Samples[1024:1280]
	if err := proto.WriteFrameV2(cConn, proto.TypeUpload, 1, uploadFrom(t, w, 1)); err != nil {
		t.Fatal(err)
	}
	// The reply must arrive once Shutdown cancels the window — read it
	// concurrently so the server's writer is never blocked on us.
	got := make(chan error, 1)
	go func() {
		cConn.SetReadDeadline(time.Now().Add(20 * time.Second))
		f, err := proto.ReadFrameAny(cConn)
		if err == nil && f.Type != proto.TypeCorrSet {
			err = fmt.Errorf("reply type %d, want CorrSet", f.Type)
		}
		got <- err
	}()

	// Let the upload reach the collector and start its window wait.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics.Requests.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("upload never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= window/2 {
		t.Fatalf("Shutdown took %v: batch window wait not cancelled", elapsed)
	}
	if err := <-got; err != nil {
		t.Fatalf("in-flight upload not answered during drain: %v", err)
	}
}
