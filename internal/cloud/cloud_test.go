package cloud

import (
	"net"
	"testing"
	"time"

	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/synth"
)

func testStore(t testing.TB) (*mdb.Store, *synth.Generator) {
	t.Helper()
	g := synth.NewGenerator(synth.Config{Seed: 71, ArchetypesPerClass: 2})
	var recs []*synth.Recording
	for arch := 0; arch < 2; arch++ {
		for i := 0; i < 3; i++ {
			recs = append(recs, g.Instance(synth.Normal, arch, synth.InstanceOpts{
				OffsetSamples: i * 5000, DurSeconds: 60}))
		}
	}
	store, err := mdb.Build(recs, mdb.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	return store, g
}

func TestSearchAnswersUpload(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	counts, scale := proto.Quantize(input.Samples[1024:1280])
	corrSet, err := srv.Search(&proto.Upload{Seq: 9, Scale: scale, Samples: counts})
	if err != nil {
		t.Fatal(err)
	}
	if corrSet.Seq != 9 {
		t.Fatalf("seq echo = %d", corrSet.Seq)
	}
	for _, e := range corrSet.Entries {
		if e.Omega <= 0.8 {
			t.Fatalf("entry below δ: %g", e.Omega)
		}
		if len(e.Samples) == 0 {
			t.Fatal("entry carries no continuation samples")
		}
	}
}

func TestHorizonClipsAtRecordingEnd(t *testing.T) {
	store, g := testStore(t)
	// A huge horizon must degrade gracefully to whatever the parent
	// recording still holds, never erroring or overrunning.
	srv, err := NewServer(store, Config{HorizonSeconds: 3600})
	if err != nil {
		t.Fatal(err)
	}
	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	counts, scale := proto.Quantize(input.Samples[1024:1280])
	corrSet, err := srv.Search(&proto.Upload{Seq: 1, Scale: scale, Samples: counts})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range corrSet.Entries {
		if len(e.Samples) < 256 {
			t.Fatalf("clipped entry too short: %d", len(e.Samples))
		}
	}
}

// TestContinuationClipsExactlyAtRecordEnd is the regression test for
// the horizon-clipping fix: a match near the end of its parent
// recording must receive every remaining sample, not the remainder
// rounded down to a whole number of windows (which silently dropped up
// to ~1 s of continuation).
func TestContinuationClipsExactlyAtRecordEnd(t *testing.T) {
	g := synth.NewGenerator(synth.Config{Seed: 5, ArchetypesPerClass: 1})
	rec := g.Instance(synth.Normal, 0, synth.InstanceOpts{DurSeconds: 30})
	store := mdb.NewStore()
	// 5000 stored samples → signal-sets at 0..4000; a match at
	// absolute offset 4500 has exactly 500 samples of continuation,
	// which is not a multiple of the 256-sample window.
	if _, err := store.Insert(&mdb.Record{ID: "r", Samples: rec.Samples[:5000]}, 1000, nil); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(store, Config{HorizonSeconds: 8})
	if err != nil {
		t.Fatal(err)
	}
	counts, scale := proto.Quantize(rec.Samples[4500:4756])
	corrSet, err := srv.Search(&proto.Upload{Seq: 1, Scale: scale, Samples: counts})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range corrSet.Entries {
		if e.SetID == 4 && e.Beta == 500 { // the exact-copy match
			found = true
			if len(e.Samples) != 500 {
				t.Fatalf("continuation = %d samples, want exactly the 500 remaining in the recording", len(e.Samples))
			}
		}
	}
	if !found {
		t.Fatal("exact-copy window was not retrieved at its true offset")
	}
}

func TestServeStopsOnClose(t *testing.T) {
	store, _ := testStore(t)
	srv, err := NewServer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestHandleConnAfterCloseRejected(t *testing.T) {
	store, _ := testStore(t)
	srv, _ := NewServer(store, Config{})
	_ = srv.Close()
	a, b := net.Pipe()
	defer a.Close()
	go srv.HandleConn(b)
	// The server must close the connection immediately.
	a.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	if _, err := a.Read(buf); err == nil {
		t.Fatal("connection should be closed by a closed server")
	}
}

func TestMetricsCount(t *testing.T) {
	store, g := testStore(t)
	srv, _ := NewServer(store, Config{})
	a, b := net.Pipe()
	defer a.Close()
	go srv.HandleConn(b)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	counts, scale := proto.Quantize(input.Samples[1024:1280])
	payload := proto.EncodeUpload(&proto.Upload{Seq: 1, Scale: scale, Samples: counts})
	if err := proto.WriteFrame(a, proto.TypeUpload, payload); err != nil {
		t.Fatal(err)
	}
	if _, _, err := proto.ReadFrame(a); err != nil {
		t.Fatal(err)
	}
	if srv.Metrics.Requests.Load() != 1 || srv.Metrics.Connections.Load() != 1 {
		t.Fatalf("metrics: %d requests, %d connections",
			srv.Metrics.Requests.Load(), srv.Metrics.Connections.Load())
	}
}
