package cloud

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"emap/internal/proto"
)

// FrameHandler is the serving side of a Transport: it answers one
// decoded request frame with one reply (type + payload). The transport
// mirrors the request's version, ID and tenant onto the reply frame, so
// handlers deal purely in message semantics. Handlers must be safe for
// concurrent use — pipelined connections serve frames in parallel.
//
// The tenant-engine layer (Engine) is the canonical handler; the
// cluster tier adds others (a node wrapping an Engine with ownership
// checks, a router proxying to owner nodes) without re-implementing the
// connection machinery.
type FrameHandler interface {
	ServeFrame(f proto.Frame) (proto.MsgType, []byte)
}

// TransportConfig parameterises the connection layer alone; the
// tenant-engine knobs live in Config.
type TransportConfig struct {
	// MaxInFlight bounds how many requests one connection may have
	// queued or serving (default 4×GOMAXPROCS); past it the reader
	// stops consuming frames and TCP backpressure does the rest.
	MaxInFlight int
	// MaxVersion caps the protocol version negotiated with peers
	// (default proto.MaxVersion).
	MaxVersion uint8
	// IdleTimeout, when positive, closes a connection that delivers no
	// frame for this long — the slow-loris guard: a stalled half-open
	// peer is reaped instead of holding its goroutines and buffers
	// forever. Disabled by default; deployments set it well above the
	// edge upload cadence.
	IdleTimeout time.Duration
	// Logger receives per-connection diagnostics; nil disables
	// logging.
	Logger *log.Logger
	// Metrics, when non-nil, is where the transport counts
	// connections, write errors and request flight; the owner shares
	// one Metrics between its engine and its transport.
	Metrics *Metrics
}

func (c TransportConfig) withDefaults() TransportConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxVersion == 0 || c.MaxVersion > proto.MaxVersion {
		c.MaxVersion = proto.MaxVersion
	}
	if c.Metrics == nil {
		c.Metrics = &Metrics{}
	}
	return c
}

// outFrame is one queued response awaiting the writer goroutine.
type outFrame struct {
	version uint8
	typ     proto.MsgType
	id      uint32
	tenant  string
	payload []byte
}

// Transport is the connection layer of the cloud tier, split out from
// the tenant engine so a process can host engines without owning the
// listener (and vice versa — the cluster router owns a listener with no
// engine behind it). It speaks every protocol version: v1 connections
// are served serially in request order, v2/v3 frames carry request IDs,
// so each connection runs a reader goroutine dispatching requests
// concurrently and a single writer goroutine draining a response queue.
// Hello and Ping are answered by the transport itself; every other
// frame goes to the FrameHandler.
type Transport struct {
	h   FrameHandler
	cfg TransportConfig

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	draining bool
	conns    map[net.Conn]struct{}
	handlers sync.WaitGroup
}

// NewTransport returns a transport serving frames through h.
func NewTransport(h FrameHandler, cfg TransportConfig) *Transport {
	return &Transport{
		h:     h,
		cfg:   cfg.withDefaults(),
		conns: make(map[net.Conn]struct{}),
	}
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logger != nil {
		t.cfg.Logger.Printf(format, args...)
	}
}

// Serve accepts connections until the listener is closed.
func (t *Transport) Serve(l net.Listener) error {
	t.mu.Lock()
	t.listener = l
	t.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go t.HandleConn(conn)
	}
}

// Close stops the accept loop and terminates active connections
// immediately, abandoning any in-flight replies.
func (t *Transport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for conn := range t.conns {
		conn.Close()
	}
	if t.listener != nil {
		return t.listener.Close()
	}
	return nil
}

// Shutdown drains the transport gracefully: it stops accepting, stops
// reading new requests, lets every in-flight request complete and its
// reply flush, then closes the connections. If ctx expires first the
// remaining connections are closed hard and ctx.Err() is returned.
func (t *Transport) Shutdown(ctx context.Context) error {
	t.mu.Lock()
	t.closed = true
	t.draining = true
	l := t.listener
	// Wake blocked readers: their next ReadFrameAny fails with a
	// deadline error and the per-connection drain path runs.
	past := time.Unix(1, 0)
	for conn := range t.conns {
		conn.SetReadDeadline(past)
	}
	t.mu.Unlock()
	if l != nil {
		l.Close()
	}
	done := make(chan struct{})
	go func() {
		t.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close; handlers exit on their own once their
		// in-flight requests return.
		t.Close()
		return ctx.Err()
	}
}

// isDrainErr reports whether a read error is the deadline Shutdown
// planted to stop this connection's intake.
func (t *Transport) isDrainErr(err error) bool {
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.draining
}

// isIdleErr reports whether a read error is the idle deadline expiring
// on a non-draining transport — a stalled peer, not a shutdown.
func (t *Transport) isIdleErr(err error) bool {
	if t.cfg.IdleTimeout <= 0 {
		return false
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.draining
}

// HandleConn serves one peer connection until it fails, the peer
// disconnects, or the transport drains. The calling goroutine is the
// frame reader; requests on v2+ connections are dispatched concurrently
// (bounded by MaxInFlight) and all replies funnel through one writer
// goroutine, so pipelined peers can keep many requests in flight on one
// connection.
func (t *Transport) HandleConn(conn net.Conn) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return
	}
	t.conns[conn] = struct{}{}
	t.handlers.Add(1)
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
		t.handlers.Done()
	}()
	m := t.cfg.Metrics
	m.Connections.Add(1)

	out := make(chan outFrame, 16)
	writerDone := make(chan struct{})
	var writeFailed atomic.Bool
	go func() {
		defer close(writerDone)
		for f := range out {
			if writeFailed.Load() {
				continue // drain abandoned replies
			}
			if err := proto.WriteFrameTenant(conn, f.version, f.typ, f.id, f.tenant, f.payload); err != nil {
				// A dead write means a dead peer: tear the
				// connection down so the reader unblocks and
				// the handler exits, instead of looping on a
				// broken conn.
				m.Errors.Add(1)
				t.logf("cloud: write: %v", err)
				writeFailed.Store(true)
				conn.Close()
			}
		}
	}()

	var jobs sync.WaitGroup
	connSem := make(chan struct{}, t.cfg.MaxInFlight)
	for {
		if t.cfg.IdleTimeout > 0 {
			// Arm the idle deadline per read — but never overwrite the
			// past deadline Shutdown plants to stop this conn's intake.
			t.mu.Lock()
			draining := t.draining
			t.mu.Unlock()
			if !draining {
				conn.SetReadDeadline(time.Now().Add(t.cfg.IdleTimeout))
			}
		}
		frame, err := proto.ReadFrameAny(conn)
		if err != nil {
			if t.isIdleErr(err) {
				m.IdleReaped.Add(1)
				t.logf("cloud: reaping idle connection: no frame in %v", t.cfg.IdleTimeout)
			} else if !errors.Is(err, io.EOF) && !t.isDrainErr(err) {
				m.Errors.Add(1)
				t.logf("cloud: read: %v", err)
			}
			break
		}
		switch frame.Type {
		case proto.TypeHello:
			hello, herr := proto.DecodeHello(frame.Payload)
			if herr != nil {
				m.Errors.Add(1)
				out <- errorFrame(frame, 400, herr.Error())
				continue
			}
			v := proto.Negotiate(t.cfg.MaxVersion, hello.MaxVersion)
			// The reply travels as a v1 frame: every client
			// understands it, whatever it announced.
			out <- outFrame{version: proto.Version1, typ: proto.TypeHello,
				payload: proto.EncodeHello(&proto.Hello{MaxVersion: v})}
		case proto.TypePing:
			out <- outFrame{version: frame.Version, typ: proto.TypePong,
				id: frame.ID, tenant: frame.Tenant}
		default:
			// Uploads and ingests are the tracked request load; the
			// flight gauges and the request counter describe them.
			// Control frames (cluster replication, ring pushes) and
			// unknown types still route through the handler — and
			// still occupy a connSem slot, so one connection cannot
			// flood the process with unbounded concurrent control
			// work — but they are not "requests served".
			tracked := frame.Type == proto.TypeUpload || frame.Type == proto.TypeIngest
			if tracked {
				m.Requests.Add(1)
				m.enterFlight()
			}
			if frame.Version >= proto.Version2 {
				// Pipelined: independent requests run in
				// parallel, replies matched by request ID.
				// The per-connection cap blocks the reader
				// when a client pipelines too far ahead.
				connSem <- struct{}{}
				jobs.Add(1)
				go func(f proto.Frame) {
					defer jobs.Done()
					defer func() { <-connSem }()
					t.serveFrame(f, out, tracked)
				}(frame)
			} else {
				// v1 carries no IDs: replies must keep
				// request order, so serve inline.
				t.serveFrame(frame, out, tracked)
			}
		}
	}
	// Let in-flight requests finish and their replies flush before
	// the deferred close — this is the graceful-drain half of
	// Shutdown, and it also runs on ordinary disconnects.
	jobs.Wait()
	close(out)
	<-writerDone
}

// serveFrame runs one frame through the handler and queues its reply,
// mirroring the request's frame version, ID and tenant. A handler
// panic is the handler's bug, but it must cost exactly one request: the
// panic is recovered, that request answers with a 5xx-class error, and
// the connection — and every other request on the worker pool — keeps
// serving.
func (t *Transport) serveFrame(f proto.Frame, out chan<- outFrame, tracked bool) {
	if tracked {
		defer t.cfg.Metrics.leaveFlight()
	}
	typ, payload := t.callHandler(f)
	out <- outFrame{version: f.Version, typ: typ, id: f.ID, tenant: f.Tenant, payload: payload}
}

// callHandler invokes the frame handler with panic isolation.
func (t *Transport) callHandler(f proto.Frame) (typ proto.MsgType, payload []byte) {
	defer func() {
		if r := recover(); r != nil {
			t.cfg.Metrics.Panics.Add(1)
			t.cfg.Metrics.Errors.Add(1)
			t.logf("cloud: panic serving type-%d frame: %v\n%s", f.Type, r, debug.Stack())
			typ = proto.TypeError
			payload = errorPayload(500, fmt.Sprintf("internal error: %v", r))
		}
	}()
	return t.h.ServeFrame(f)
}

// errorFrame builds an ErrorMsg reply mirroring the offending frame's
// version, ID and tenant.
func errorFrame(frame proto.Frame, code uint16, text string) outFrame {
	return outFrame{version: frame.Version, typ: proto.TypeError, id: frame.ID,
		tenant: frame.Tenant, payload: proto.EncodeError(&proto.ErrorMsg{Code: code, Text: text})}
}

// errorPayload builds an ErrorMsg payload; handlers return it with
// proto.TypeError.
func errorPayload(code uint16, text string) []byte {
	return proto.EncodeError(&proto.ErrorMsg{Code: code, Text: text})
}
