package cloud

import (
	"math"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/synth"
)

// ingestFor builds a deterministic preprocessed recording of n samples
// as a wire ingest.
func ingestFor(id string, seq uint32, n int) *proto.Ingest {
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = 40*math.Sin(2*math.Pi*float64(i)/97) + 10*math.Sin(2*math.Pi*float64(i)/13+float64(seq))
	}
	counts, scale := proto.Quantize(samples)
	return &proto.Ingest{Seq: seq, RecordID: id, Onset: -1, Scale: scale, Samples: counts}
}

// TestPanicIsolation is the poisoned-request regression test: a
// handler panic must fail exactly that request with a 5xx-class error
// and leave the connection and worker pool serving.
func TestPanicIsolation(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.searchHook = func(u *proto.Upload) {
		if u.Seq == 13 {
			panic("poisoned request")
		}
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]

	f := v3Exchange(t, cConn, proto.TypeUpload, 1, "", uploadFrom(t, window, 13))
	if f.Type != proto.TypeError {
		t.Fatalf("poisoned request reply type %d, want error", f.Type)
	}
	em, err := proto.DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if em.Code < 500 || em.Code > 599 {
		t.Fatalf("poisoned request error code %d, want 5xx", em.Code)
	}
	if got := srv.Metrics.Panics.Load(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
	// The same connection keeps serving.
	f = v3Exchange(t, cConn, proto.TypeUpload, 2, "", uploadFrom(t, window, 2))
	if f.Type != proto.TypeCorrSet {
		t.Fatalf("post-panic request reply type %d, want corrset", f.Type)
	}
	if got := srv.Metrics.Panics.Load(); got != 1 {
		t.Fatalf("Panics = %d after healthy request, want 1", got)
	}
}

// TestBatchLeaderPanicFailsBatchOnly: a panic inside the batched
// search path (here: a nil searcher) must not strand joiners on the
// group's done channel — every member gets a 5xx and the engine keeps
// serving other tenants.
func TestBatchLeaderPanicFailsBatchOnly(t *testing.T) {
	srv, err := NewServer(nil, Config{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := srv.tenantFor("poisoned")
	if err != nil {
		t.Fatal(err)
	}
	poisoned.searcher = nil // any search through the collector panics

	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)
	window := make([]float64, 256)
	f := v3Exchange(t, cConn, proto.TypeUpload, 1, "poisoned", uploadFrom(t, window, 1))
	if f.Type != proto.TypeError {
		t.Fatalf("panicked batch reply type %d, want error", f.Type)
	}
	if got := srv.Metrics.Panics.Load(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
	// Other tenants are untouched.
	f = v3Exchange(t, cConn, proto.TypeUpload, 2, "healthy", uploadFrom(t, window, 2))
	if f.Type != proto.TypeCorrSet {
		t.Fatalf("healthy tenant reply type %d, want corrset", f.Type)
	}
}

// TestIdleTimeoutReapsStalledConn: with Config.IdleTimeout set, a
// half-open connection that sends nothing is reaped while an active
// peer on the same server keeps exchanging frames.
func TestIdleTimeoutReapsStalledConn(t *testing.T) {
	store, _ := testStore(t)
	srv, err := NewServer(store, Config{IdleTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stalled, stalledSrv := net.Pipe()
	defer stalled.Close()
	go srv.HandleConn(stalledSrv)
	active, activeSrv := net.Pipe()
	defer active.Close()
	go srv.HandleConn(activeSrv)

	// Keep the active connection chatty past several idle windows.
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		f := v3Exchange(t, active, proto.TypePing, 7, "", nil)
		if f.Type != proto.TypePong {
			t.Fatalf("active ping reply type %d", f.Type)
		}
		time.Sleep(40 * time.Millisecond)
	}
	// The stalled peer must have been reaped by now: its end of the
	// pipe reads an error promptly.
	stalled.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := stalled.Read(make([]byte, 1)); err == nil {
		t.Fatal("stalled connection still open after idle timeout")
	}
	if got := srv.Metrics.IdleReaped.Load(); got != 1 {
		t.Fatalf("IdleReaped = %d, want 1", got)
	}
	// The active peer is undisturbed.
	f := v3Exchange(t, active, proto.TypePing, 8, "", nil)
	if f.Type != proto.TypePong {
		t.Fatalf("active conn disturbed by reap: reply type %d", f.Type)
	}
}

// TestIngestWALSurvivesRestart: acked ingests against a WAL-enabled
// server are present after abandoning the process without any registry
// close — the basic crash-recovery property on the real filesystem.
func TestIngestWALSurvivesRestart(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	mk := func() *Server {
		reg, err := mdb.NewRegistry(snapDir, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewRegistryServer(reg, Config{WALDir: walDir, SliceLen: 256})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	srv := mk()
	for i := uint32(0); i < 3; i++ {
		ack, err := srv.Ingest("ward-a", ingestFor(recID(i), i, 1024))
		if err != nil {
			t.Fatal(err)
		}
		if ack.Sets == 0 {
			t.Fatalf("ingest %d created no sets", i)
		}
	}
	srv.Close() // transport only — the registry is never closed (the crash)

	srv2 := mk()
	defer srv2.Close()
	store, err := srv2.Registry().Open("ward-a")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 3; i++ {
		if _, ok := store.Record(recID(i)); !ok {
			t.Fatalf("acked ingest %s lost across restart", recID(i))
		}
	}
}

func recID(i uint32) string {
	return "crash-rec-" + string(rune('a'+i))
}

// TestPersistErrorsMetric: a failed eviction-time persist must count on
// the cloud metric (via the registry's OnPersistError hook) and keep
// the tenant resident.
func TestPersistErrorsMetric(t *testing.T) {
	snapDir := filepath.Join(t.TempDir(), "snaps")
	reg, err := mdb.NewRegistry(snapDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewRegistryServer(reg, Config{SliceLen: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Ingest("ward-a", ingestFor("rec-a", 1, 1024)); err != nil {
		t.Fatal(err)
	}
	// Replace the snapshot directory with a file so the persist fails.
	if err := os.RemoveAll(snapDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapDir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Evict("ward-a"); err == nil {
		t.Fatal("eviction persisted into a broken directory")
	}
	if got := srv.Metrics.PersistErrors.Load(); got != 1 {
		t.Fatalf("PersistErrors = %d, want 1", got)
	}
	if _, ok := reg.Get("ward-a"); !ok {
		t.Fatal("failed persist lost the tenant")
	}
}
