package cloud

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/synth"
)

// registryServer builds a server over a fresh in-memory registry with
// two pre-seeded tenants holding distinct stores.
func registryServer(t testing.TB, cfg Config) (*Server, *synth.Generator) {
	t.Helper()
	g := synth.NewGenerator(synth.Config{Seed: 71, ArchetypesPerClass: 2})
	reg, err := mdb.NewRegistry("", 0)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tenantID := range []string{"alice", "bob"} {
		var recs []*synth.Recording
		for i := 0; i < 3; i++ {
			recs = append(recs, g.Instance(synth.Normal, ti, synth.InstanceOpts{
				OffsetSamples: i * 5000, DurSeconds: 60}))
		}
		store, err := mdb.Build(recs, mdb.DefaultBuildConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Adopt(tenantID, store); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewRegistryServer(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, g
}

// v3Exchange writes one v3 frame and reads one reply frame.
func v3Exchange(t *testing.T, conn net.Conn, typ proto.MsgType, id uint32, tenant string, payload []byte) proto.Frame {
	t.Helper()
	if err := proto.WriteFrameV3(conn, typ, id, tenant, payload); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := proto.ReadFrameAny(conn)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestV3RoutesByTenant: one connection, requests alternating between
// two tenants; each reply must mirror the request's tenant and the
// per-tenant metrics must count exactly their own traffic.
func TestV3RoutesByTenant(t *testing.T) {
	srv, g := registryServer(t, Config{CacheSize: -1})
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]
	for i, tenant := range []string{"alice", "bob", "alice"} {
		f := v3Exchange(t, cConn, proto.TypeUpload, uint32(10+i), tenant, uploadFrom(t, window, uint32(10+i)))
		if f.Type != proto.TypeCorrSet {
			t.Fatalf("reply type %d", f.Type)
		}
		if f.Version != proto.Version3 || f.Tenant != tenant || f.ID != uint32(10+i) {
			t.Fatalf("reply does not mirror request: %+v", f)
		}
	}
	am, bm := srv.MetricsFor("alice"), srv.MetricsFor("bob")
	if am == nil || bm == nil {
		t.Fatal("per-tenant metrics missing")
	}
	if am.Requests.Load() != 2 || bm.Requests.Load() != 1 {
		t.Fatalf("tenant request counts: alice %d, bob %d", am.Requests.Load(), bm.Requests.Load())
	}
	if srv.Metrics.Requests.Load() != 3 {
		t.Fatalf("registry-wide requests = %d", srv.Metrics.Requests.Load())
	}
}

// TestTenantCacheIsolation: the same window uploaded to two tenants
// must never share cache entries — tenant B's first upload is a miss
// even though tenant A has the answer cached.
func TestTenantCacheIsolation(t *testing.T) {
	srv, g := registryServer(t, Config{})
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]
	for i, tenant := range []string{"alice", "alice", "bob", "bob"} {
		f := v3Exchange(t, cConn, proto.TypeUpload, uint32(i+1), tenant, uploadFrom(t, window, uint32(i+1)))
		if f.Type != proto.TypeCorrSet {
			t.Fatalf("upload %d: reply type %d", i, f.Type)
		}
	}
	am, bm := srv.MetricsFor("alice"), srv.MetricsFor("bob")
	if am.CacheMisses.Load() != 1 || am.CacheHits.Load() != 1 {
		t.Fatalf("alice cache: %d misses / %d hits, want 1/1",
			am.CacheMisses.Load(), am.CacheHits.Load())
	}
	if bm.CacheMisses.Load() != 1 || bm.CacheHits.Load() != 1 {
		t.Fatalf("bob cache: %d misses / %d hits, want 1/1 (first bob upload must not hit alice's cache)",
			bm.CacheMisses.Load(), bm.CacheHits.Load())
	}
}

// TestIngestGrowsSearchableStore: a tenant starts empty, searches get
// empty sets, an ingest makes the recording retrievable immediately.
func TestIngestGrowsSearchableStore(t *testing.T) {
	srv, err := NewServer(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	g := synth.NewGenerator(synth.Config{Seed: 5, ArchetypesPerClass: 1})
	rec := g.Instance(synth.Normal, 0, synth.InstanceOpts{DurSeconds: 40, NoArtifacts: true})
	proc, err := mdb.Preprocess(rec, mdb.DefaultBuildConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	window := proc.Samples[2048:2304]

	// 1: empty store answers with an empty correlation set.
	f := v3Exchange(t, cConn, proto.TypeUpload, 1, "", uploadFrom(t, window, 1))
	if f.Type != proto.TypeCorrSet {
		t.Fatalf("empty-store reply type %d", f.Type)
	}
	cs, err := proto.DecodeCorrSet(f.Payload)
	if err != nil || len(cs.Entries) != 0 {
		t.Fatalf("empty store returned %d entries (%v)", len(cs.Entries), err)
	}

	// 2: ingest the recording.
	counts, scale := proto.Quantize(proc.Samples)
	ingPayload := proto.EncodeIngest(&proto.Ingest{
		Seq: 2, RecordID: "live-1", Onset: -1, Scale: scale, Samples: counts})
	f = v3Exchange(t, cConn, proto.TypeIngest, 2, "", ingPayload)
	if f.Type != proto.TypeIngestAck {
		t.Fatalf("ingest reply type %d", f.Type)
	}
	ack, err := proto.DecodeIngestAck(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Sets == 0 || ack.TotalSets != ack.Sets || ack.TotalRecords != 1 {
		t.Fatalf("ack: %+v", ack)
	}

	// 3: the same window now retrieves the ingested recording.
	f = v3Exchange(t, cConn, proto.TypeUpload, 3, "", uploadFrom(t, window, 3))
	cs, err = proto.DecodeCorrSet(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Entries) == 0 {
		t.Fatal("ingested recording not retrievable")
	}
	// A duplicate record ID must be refused.
	f = v3Exchange(t, cConn, proto.TypeIngest, 4, "", ingPayload)
	if f.Type != proto.TypeError {
		t.Fatalf("duplicate ingest reply type %d", f.Type)
	}
	if m := srv.MetricsFor(""); m.Ingests.Load() != 1 || m.IngestedSets.Load() != int64(ack.Sets) {
		t.Fatalf("ingest metrics: %d ingests, %d sets", m.Ingests.Load(), m.IngestedSets.Load())
	}
}

// TestLegacyVersionsLandOnDefaultTenant: v1 and v2 frames carry no
// tenant and must be served from the default tenant's store.
func TestLegacyVersionsLandOnDefaultTenant(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]

	if err := proto.WriteFrame(cConn, proto.TypeUpload, uploadFrom(t, window, 1)); err != nil {
		t.Fatal(err)
	}
	cConn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, _, err := proto.ReadFrame(cConn)
	if err != nil || typ != proto.TypeCorrSet {
		t.Fatalf("v1 reply: %d, %v", typ, err)
	}
	if err := proto.WriteFrameV2(cConn, proto.TypeUpload, 2, uploadFrom(t, window, 2)); err != nil {
		t.Fatal(err)
	}
	f, err := proto.ReadFrameAny(cConn)
	if err != nil || f.Type != proto.TypeCorrSet || f.Version != proto.Version2 {
		t.Fatalf("v2 reply: %+v, %v", f, err)
	}
	m := srv.MetricsFor(DefaultTenant)
	if m == nil || m.Requests.Load() != 2 {
		t.Fatalf("default tenant requests = %v", m)
	}
}

// TestInvalidTenantRejected: a request naming an invalid tenant must
// fail with an error frame, not open a store.
func TestInvalidTenantRejected(t *testing.T) {
	srv, _ := registryServer(t, Config{})
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)
	f := v3Exchange(t, cConn, proto.TypeUpload, 1, "no/such tenant", uploadFrom(t, make([]float64, 256), 1))
	if f.Type != proto.TypeError {
		t.Fatalf("reply type %d, want error", f.Type)
	}
	em, err := proto.DecodeError(f.Payload)
	if err != nil || em.Code != 404 {
		t.Fatalf("error reply: %+v, %v", em, err)
	}
}

// TestConcurrentIngestAndSearchOneTenant drives the acceptance
// criterion over the wire: one tenant store ingests live while several
// pipelined connections search it, race-clean and error-free.
func TestConcurrentIngestAndSearchOneTenant(t *testing.T) {
	srv, err := NewServer(nil, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	g := synth.NewGenerator(synth.Config{Seed: 13, ArchetypesPerClass: 2})
	mkProc := func(i int) *mdb.Record {
		rec := g.Instance(synth.Normal, i%2, synth.InstanceOpts{
			OffsetSamples: i * 2000, DurSeconds: 20})
		proc, err := mdb.Preprocess(rec, mdb.DefaultBuildConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		proc.ID = fmt.Sprintf("live-%d", i)
		return proc
	}
	first := mkProc(0)
	window := first.Samples[1024:1280]

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ingest connection
		defer wg.Done()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		for i := 0; i < 10; i++ {
			proc := first
			if i > 0 {
				proc = mkProc(i)
			}
			counts, scale := proto.Quantize(proc.Samples)
			payload := proto.EncodeIngest(&proto.Ingest{
				RecordID: proc.ID, Onset: -1, Scale: scale, Samples: counts})
			if err := proto.WriteFrameV3(conn, proto.TypeIngest, uint32(i+1), "", payload); err != nil {
				t.Error(err)
				return
			}
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			f, err := proto.ReadFrameAny(conn)
			if err != nil || f.Type != proto.TypeIngestAck {
				t.Errorf("ingest %d: %v (type %v)", i, err, f.Type)
				return
			}
		}
	}()
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) { // search connections
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; i < 15; i++ {
				id := uint32(100*c + i)
				if err := proto.WriteFrameV3(conn, proto.TypeUpload, id, "", uploadFrom(t, window, id)); err != nil {
					t.Error(err)
					return
				}
				conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				f, err := proto.ReadFrameAny(conn)
				if err != nil || f.Type != proto.TypeCorrSet {
					t.Errorf("search %d/%d: %v (type %v)", c, i, err, f.Type)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if e := srv.Metrics.Errors.Load(); e != 0 {
		t.Fatalf("server recorded %d errors", e)
	}
	// The store grew while being searched, and a final search sees it.
	counts, scale := proto.Quantize(window)
	cs, err := srv.Search(&proto.Upload{Seq: 1, Scale: scale, Samples: counts})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Entries) == 0 {
		t.Fatal("ingested recordings not retrievable after the run")
	}
	if m := srv.MetricsFor(""); m.Ingests.Load() != 10 {
		t.Fatalf("ingests = %d", m.Ingests.Load())
	}
}
