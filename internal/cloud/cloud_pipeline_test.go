package cloud

import (
	"context"
	"net"
	"testing"
	"time"

	"emap/internal/proto"
	"emap/internal/synth"
)

// uploadFrom builds a valid upload payload from the test generator.
func uploadFrom(t testing.TB, samples []float64, seq uint32) []byte {
	t.Helper()
	counts, scale := proto.Quantize(samples)
	return proto.EncodeUpload(&proto.Upload{Seq: seq, Scale: scale, Samples: counts})
}

// TestPipelinedUploadsOutOfOrder proves the acceptance criterion: ≥2
// uploads in flight concurrently on one connection, completing out of
// order, each reply matched to its request by the v2 frame ID.
func TestPipelinedUploadsOutOfOrder(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	inFlight := make(chan uint32, 3)
	releaseFirst := make(chan struct{})
	srv.searchHook = func(u *proto.Upload) {
		inFlight <- u.Seq
		if u.Seq == 11 {
			<-releaseFirst // hold request 11 until the others finish
		}
	}

	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]
	for _, id := range []uint32{11, 12, 13} {
		if err := proto.WriteFrameV2(cConn, proto.TypeUpload, id, uploadFrom(t, window, id)); err != nil {
			t.Fatal(err)
		}
	}

	// Wait until all three are dispatched; request 11 is pinned in
	// its worker, so at that moment ≥2 requests were concurrently in
	// flight on this one connection.
	for i := 0; i < 3; i++ {
		select {
		case <-inFlight:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d uploads reached the workers; pipelining is broken", i)
		}
	}
	if peak := srv.Metrics.PeakInFlight.Load(); peak < 2 {
		t.Fatalf("peak in-flight %d, want ≥2", peak)
	}

	read := func() proto.Frame {
		t.Helper()
		cConn.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := proto.ReadFrameAny(cConn)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// With 11 held, the first two replies must be 12 and 13 — the
	// completion order differs from the issue order.
	got := map[uint32]bool{}
	for i := 0; i < 2; i++ {
		f := read()
		if f.Version != proto.Version2 || f.Type != proto.TypeCorrSet {
			t.Fatalf("reply %d: version %d type %d", i, f.Version, f.Type)
		}
		if f.ID == 11 {
			t.Fatal("held request overtook the others: completion was not out of order")
		}
		cs, err := proto.DecodeCorrSet(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Seq != f.ID {
			t.Fatalf("payload seq %d under frame ID %d: reply matched to wrong request", cs.Seq, f.ID)
		}
		got[f.ID] = true
	}
	if !got[12] || !got[13] {
		t.Fatalf("early replies were %v, want {12,13}", got)
	}
	close(releaseFirst)
	if f := read(); f.ID != 11 {
		t.Fatalf("final reply ID %d, want 11", f.ID)
	}
	if fl := srv.Metrics.InFlight.Load(); fl != 0 {
		t.Fatalf("in-flight gauge did not return to zero: %d", fl)
	}
	if srv.Metrics.Requests.Load() != 3 {
		t.Fatalf("requests = %d", srv.Metrics.Requests.Load())
	}
	if srv.Metrics.MeanLatency() <= 0 {
		t.Fatal("mean latency not recorded")
	}
}

// TestSerialV1KeepsOrder checks that v1 clients (no request IDs) still
// get replies in request order even on the concurrent server.
func TestSerialV1KeepsOrder(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]
	done := make(chan error, 1)
	go func() {
		for seq := uint32(1); seq <= 3; seq++ {
			if err := proto.WriteFrame(cConn, proto.TypeUpload, uploadFrom(t, window, seq)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for seq := uint32(1); seq <= 3; seq++ {
		cConn.SetReadDeadline(time.Now().Add(5 * time.Second))
		typ, payload, err := proto.ReadFrame(cConn)
		if err != nil {
			t.Fatal(err)
		}
		if typ != proto.TypeCorrSet {
			t.Fatalf("reply type %d", typ)
		}
		cs, err := proto.DecodeCorrSet(payload)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Seq != seq {
			t.Fatalf("v1 reply out of order: got seq %d, want %d", cs.Seq, seq)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWriteErrorTearsDownConn: a failed reply write must terminate
// the connection handler instead of looping on a dead conn.
func TestWriteErrorTearsDownConn(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	handlerDone := make(chan struct{})
	go func() {
		srv.HandleConn(sConn)
		close(handlerDone)
	}()

	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]
	// net.Pipe is synchronous: once this write returns, the server
	// has consumed the frame. Closing before reading the reply makes
	// the server's write fail.
	if err := proto.WriteFrame(cConn, proto.TypeUpload, uploadFrom(t, window, 1)); err != nil {
		t.Fatal(err)
	}
	cConn.Close()
	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("handler kept running after a write error")
	}
}

// TestShutdownDrains: Shutdown must let in-flight searches finish and
// their replies flush before closing connections.
func TestShutdownDrains(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	held := make(chan struct{})
	release := make(chan struct{})
	srv.searchHook = func(u *proto.Upload) {
		close(held)
		<-release
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]
	if err := proto.WriteFrameV2(conn, proto.TypeUpload, 42, uploadFrom(t, window, 42)); err != nil {
		t.Fatal(err)
	}
	<-held

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	close(release)

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := proto.ReadFrameAny(conn)
	if err != nil {
		t.Fatalf("drained reply lost: %v", err)
	}
	if f.ID != 42 || f.Type != proto.TypeCorrSet {
		t.Fatalf("drained reply: %+v", f)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after Shutdown: %v", err)
	}
}

// TestShutdownDeadline: a Shutdown whose context expires must
// force-close and report the context error.
func TestShutdownDeadline(t *testing.T) {
	store, g := testStore(t)
	srv, err := NewServer(store, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release)
	held := make(chan struct{})
	srv.searchHook = func(u *proto.Upload) {
		close(held)
		<-release
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{OffsetSamples: 5200, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]
	if err := proto.WriteFrameV2(conn, proto.TypeUpload, 1, uploadFrom(t, window, 1)); err != nil {
		t.Fatal(err)
	}
	<-held
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown error = %v, want deadline exceeded", err)
	}
}

// TestServerHelloNegotiation: the server must answer Hello with the
// negotiated version.
func TestServerHelloNegotiation(t *testing.T) {
	store, _ := testStore(t)
	srv, err := NewServer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)

	for _, c := range []struct{ announce, want uint8 }{
		{proto.Version2, proto.Version2},
		{proto.Version1, proto.Version1},
		{9, proto.MaxVersion},
	} {
		payload := proto.EncodeHello(&proto.Hello{MaxVersion: c.announce})
		if err := proto.WriteFrame(cConn, proto.TypeHello, payload); err != nil {
			t.Fatal(err)
		}
		cConn.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := proto.ReadFrameAny(cConn)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != proto.TypeHello {
			t.Fatalf("hello reply type %d", f.Type)
		}
		h, err := proto.DecodeHello(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if h.MaxVersion != c.want {
			t.Fatalf("announced %d: negotiated %d, want %d", c.announce, h.MaxVersion, c.want)
		}
	}
}
