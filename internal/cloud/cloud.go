// Package cloud implements the cloud tier of the EMAP framework as a
// network service: it hosts the mega-database, answers each uploaded
// one-second window with the top-K signal correlation set (Algorithm
// 1), and attaches to every match the continuation samples the edge
// needs for local tracking — the payload whose download time Fig. 4b
// budgets at under 200 ms for 100 signals.
package cloud

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/search"
)

// Config parameterises the cloud service.
type Config struct {
	// Search configures Algorithm 1 (zero values take paper
	// defaults).
	Search search.Params
	// HorizonSeconds is the continuation horizon sent per match
	// (default 8 s).
	HorizonSeconds float64
	// BaseRate is the sampling rate (default 256 Hz).
	BaseRate float64
	// Logger receives per-connection diagnostics; nil disables
	// logging.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.HorizonSeconds <= 0 {
		c.HorizonSeconds = 8
	}
	if c.BaseRate <= 0 {
		c.BaseRate = 256
	}
	return c
}

// Metrics counts server activity (all fields atomic).
type Metrics struct {
	Connections atomic.Int64
	Requests    atomic.Int64
	Errors      atomic.Int64
}

// Server is the cloud tier.
type Server struct {
	cfg      Config
	store    *mdb.Store
	searcher *search.Searcher

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	conns    map[net.Conn]struct{}

	// Metrics exposes request counters.
	Metrics Metrics
}

// NewServer returns a server over the given mega-database.
func NewServer(store *mdb.Store, cfg Config) (*Server, error) {
	if store == nil || store.NumSets() == 0 {
		return nil, errors.New("cloud: mega-database is empty")
	}
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		store:    store,
		searcher: search.NewSearcher(store, cfg.Search),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.HandleConn(conn)
	}
}

// Close stops the accept loop and terminates active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// HandleConn serves one edge connection: a loop of Upload→CorrSet
// exchanges (plus Ping/Pong liveness probes).
func (s *Server) HandleConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	s.Metrics.Connections.Add(1)
	for {
		typ, payload, err := proto.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.Metrics.Errors.Add(1)
				s.logf("cloud: read: %v", err)
			}
			return
		}
		switch typ {
		case proto.TypePing:
			if err := proto.WriteFrame(conn, proto.TypePong, nil); err != nil {
				return
			}
		case proto.TypeUpload:
			s.Metrics.Requests.Add(1)
			upload, err := proto.DecodeUpload(payload)
			if err != nil {
				s.Metrics.Errors.Add(1)
				s.reply(conn, nil, &proto.ErrorMsg{Code: 400, Text: err.Error()})
				continue
			}
			corrSet, serr := s.Search(upload)
			if serr != nil {
				s.Metrics.Errors.Add(1)
				s.reply(conn, nil, &proto.ErrorMsg{Code: 500, Text: serr.Error()})
				continue
			}
			s.reply(conn, corrSet, nil)
		default:
			s.Metrics.Errors.Add(1)
			s.reply(conn, nil, &proto.ErrorMsg{Code: 400, Text: fmt.Sprintf("unexpected message type %d", typ)})
		}
	}
}

func (s *Server) reply(conn net.Conn, corrSet *proto.CorrSet, errMsg *proto.ErrorMsg) {
	var err error
	if errMsg != nil {
		err = proto.WriteFrame(conn, proto.TypeError, proto.EncodeError(errMsg))
	} else {
		err = proto.WriteFrame(conn, proto.TypeCorrSet, proto.EncodeCorrSet(corrSet))
	}
	if err != nil {
		s.logf("cloud: write: %v", err)
	}
}

// Search answers one upload: run Algorithm 1 and assemble the
// correlation set with continuation samples.
func (s *Server) Search(upload *proto.Upload) (*proto.CorrSet, error) {
	window := proto.Dequantize(upload.Samples, upload.Scale)
	res, err := s.searcher.Algorithm1(window)
	if err != nil {
		return nil, err
	}
	horizon := int(s.cfg.HorizonSeconds * s.cfg.BaseRate)
	sets := s.store.Sets()
	out := &proto.CorrSet{Seq: upload.Seq}
	for _, m := range res.Matches {
		if m.SetID < 0 || m.SetID >= len(sets) {
			continue
		}
		set := sets[m.SetID]
		// Send from the matched offset forward, clipped to the end
		// of the parent recording.
		n := horizon
		var samples []float64
		for n >= len(window) {
			if win, ok := s.store.Window(set, m.Beta, n); ok {
				samples = win
				break
			}
			n -= len(window)
		}
		if samples == nil {
			continue
		}
		counts, scale := proto.Quantize(samples)
		out.Entries = append(out.Entries, proto.CorrEntry{
			SetID:     int32(m.SetID),
			Omega:     float32(m.Omega),
			Beta:      int32(m.Beta),
			Anomalous: set.Anomalous,
			Class:     uint8(set.Class),
			Archetype: uint16(set.Archetype),
			Scale:     scale,
			Samples:   counts,
		})
	}
	return out, nil
}
