// Package cloud implements the cloud tier of the EMAP framework as a
// network service: it hosts the mega-database, answers each uploaded
// one-second window with the top-K signal correlation set (Algorithm
// 1), and attaches to every match the continuation samples the edge
// needs for local tracking — the payload whose download time Fig. 4b
// budgets at under 200 ms for 100 signals.
//
// The service speaks both protocol versions (see internal/proto): v1
// connections are served serially in request order, while v2 frames
// carry request IDs, so each connection runs a reader goroutine that
// dispatches uploads to a bounded worker pool and a single writer
// goroutine that drains a response queue — independent windows search
// in parallel and replies may leave out of order.
//
// Two scan-once-serve-many layers sit between an upload and the shard
// scan. A group-commit batching collector (batch.go) coalesces the
// uploads queued behind busy workers into one multi-query search
// (search.AlgorithmN), so N in-flight windows cost one pass of memory
// bandwidth per signal-set instead of N; Config.MaxBatch bounds the
// coalescing and Config.BatchWindow optionally trades latency for
// bigger batches. In front of the collector, a bounded LRU cache
// (cache.go) keyed by a quantized fingerprint of the window answers
// repeated near-identical uploads — the tracking-loop steady state —
// without any scan at all.
package cloud

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/search"
)

// Config parameterises the cloud service.
type Config struct {
	// Search configures Algorithm 1 (zero values take paper
	// defaults).
	Search search.Params
	// HorizonSeconds is the continuation horizon sent per match
	// (default 8 s).
	HorizonSeconds float64
	// BaseRate is the sampling rate (default 256 Hz).
	BaseRate float64
	// Workers bounds how many uploads search concurrently across
	// all connections (default GOMAXPROCS).
	Workers int
	// MaxInFlight bounds how many uploads one connection may have
	// queued or searching (default 4×Workers). When a v2 client
	// pipelines past this, the reader stops consuming frames and
	// TCP backpressure does the rest — goroutines and held payloads
	// stay bounded.
	MaxInFlight int
	// MaxBatch bounds how many queued uploads one batched search
	// pass may serve (default 32). 1 disables coalescing: every
	// upload scans alone, the pre-batching behaviour.
	MaxBatch int
	// BatchWindow is how long a batch leader waits for further
	// uploads to join before searching. The default (0) adds no
	// artificial delay: a lone request on an idle server searches
	// immediately, and batches still form naturally from whatever
	// queues behind busy workers.
	BatchWindow time.Duration
	// CacheSize bounds the correlation-set cache in entries
	// (default 256). Negative disables caching.
	CacheSize int
	// Logger receives per-connection diagnostics; nil disables
	// logging.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.HorizonSeconds <= 0 {
		c.HorizonSeconds = 8
	}
	if c.BaseRate <= 0 {
		c.BaseRate = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * c.Workers
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	return c
}

// Metrics counts server activity (all fields atomic).
type Metrics struct {
	Connections atomic.Int64
	Requests    atomic.Int64
	Errors      atomic.Int64
	// InFlight is the number of uploads currently queued or
	// searching; PeakInFlight is its high-water mark.
	InFlight     atomic.Int64
	PeakInFlight atomic.Int64
	// RequestNanos accumulates per-request service time (decode →
	// reply queued); RequestNanos/Requests is the mean latency.
	RequestNanos atomic.Int64
	// Batches counts batched search passes; BatchedRequests counts
	// the uploads they served, so BatchedRequests/Batches is the
	// mean coalescing factor (see BatchSizeMean).
	Batches         atomic.Int64
	BatchedRequests atomic.Int64
	// CacheHits and CacheMisses count correlation-set cache lookups
	// for cacheable uploads.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Evaluations accumulates ω evaluations performed by the shard
	// scans — the memory-bandwidth cost batching and caching exist
	// to amortize.
	Evaluations atomic.Int64
}

// MeanLatency returns the mean per-request service time.
func (m *Metrics) MeanLatency() time.Duration {
	n := m.Requests.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(m.RequestNanos.Load() / n)
}

// BatchSizeMean returns the mean number of uploads served per batched
// search pass, or 0 before the first pass.
func (m *Metrics) BatchSizeMean() float64 {
	n := m.Batches.Load()
	if n == 0 {
		return 0
	}
	return float64(m.BatchedRequests.Load()) / float64(n)
}

func (m *Metrics) enterFlight() {
	n := m.InFlight.Add(1)
	for {
		peak := m.PeakInFlight.Load()
		if n <= peak || m.PeakInFlight.CompareAndSwap(peak, n) {
			return
		}
	}
}

func (m *Metrics) leaveFlight() { m.InFlight.Add(-1) }

// outFrame is one queued response awaiting the writer goroutine.
type outFrame struct {
	version uint8
	typ     proto.MsgType
	id      uint32
	payload []byte
}

// Server is the cloud tier.
type Server struct {
	cfg      Config
	store    *mdb.Store
	searcher *search.Searcher
	sem      chan struct{} // bounded worker pool
	cache    *corrCache    // nil when caching is disabled

	batchMu sync.Mutex
	forming *batchGroup // open batch accepting joiners, or nil

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	draining bool
	conns    map[net.Conn]struct{}
	handlers sync.WaitGroup

	// searchHook, when set, runs on the request path after decoding,
	// before the cache and the batching collector — tests use it to
	// hold requests in flight.
	searchHook func(*proto.Upload)

	// Metrics exposes request counters and gauges.
	Metrics Metrics
}

// NewServer returns a server over the given mega-database.
func NewServer(store *mdb.Store, cfg Config) (*Server, error) {
	if store == nil || store.NumSets() == 0 {
		return nil, errors.New("cloud: mega-database is empty")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		store:    store,
		searcher: search.NewSearcher(store, cfg.Search),
		sem:      make(chan struct{}, cfg.Workers),
		conns:    make(map[net.Conn]struct{}),
	}
	if cfg.CacheSize > 0 {
		s.cache = newCorrCache(cfg.CacheSize)
	}
	return s, nil
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.HandleConn(conn)
	}
}

// Close stops the accept loop and terminates active connections
// immediately, abandoning any in-flight replies.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

// Shutdown drains the server gracefully: it stops accepting, stops
// reading new requests, lets every in-flight search complete and its
// reply flush, then closes the connections. If ctx expires first the
// remaining connections are closed hard and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	l := s.listener
	// Wake blocked readers: their next ReadFrameAny fails with a
	// deadline error and the per-connection drain path runs.
	past := time.Unix(1, 0)
	for conn := range s.conns {
		conn.SetReadDeadline(past)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close; handlers exit on their own once their
		// in-flight searches return.
		s.Close()
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// HandleConn serves one edge connection until it fails, the peer
// disconnects, or the server drains. The calling goroutine is the
// frame reader; uploads are dispatched to the server-wide worker pool
// and all replies funnel through one writer goroutine, so v2 clients
// can keep many windows in flight on one connection.
func (s *Server) HandleConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.handlers.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.handlers.Done()
	}()
	s.Metrics.Connections.Add(1)

	out := make(chan outFrame, 16)
	writerDone := make(chan struct{})
	var writeFailed atomic.Bool
	go func() {
		defer close(writerDone)
		for f := range out {
			if writeFailed.Load() {
				continue // drain abandoned replies
			}
			if err := proto.WriteFrameVersion(conn, f.version, f.typ, f.id, f.payload); err != nil {
				// A dead write means a dead peer: tear the
				// connection down so the reader unblocks and
				// the handler exits, instead of looping on a
				// broken conn.
				s.Metrics.Errors.Add(1)
				s.logf("cloud: write: %v", err)
				writeFailed.Store(true)
				conn.Close()
			}
		}
	}()

	var jobs sync.WaitGroup
	connSem := make(chan struct{}, s.cfg.MaxInFlight)
	for {
		frame, err := proto.ReadFrameAny(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !isDrainErr(err, s) {
				s.Metrics.Errors.Add(1)
				s.logf("cloud: read: %v", err)
			}
			break
		}
		switch frame.Type {
		case proto.TypeHello:
			hello, herr := proto.DecodeHello(frame.Payload)
			if herr != nil {
				s.Metrics.Errors.Add(1)
				s.enqueueError(out, frame, 400, herr.Error())
				continue
			}
			v := proto.Negotiate(proto.MaxVersion, hello.MaxVersion)
			// The reply travels as a v1 frame: every client
			// understands it, whatever it announced.
			out <- outFrame{version: proto.Version1, typ: proto.TypeHello,
				payload: proto.EncodeHello(&proto.Hello{MaxVersion: v})}
		case proto.TypePing:
			out <- outFrame{version: frame.Version, typ: proto.TypePong, id: frame.ID}
		case proto.TypeUpload:
			s.Metrics.Requests.Add(1)
			s.Metrics.enterFlight()
			if frame.Version >= proto.Version2 {
				// Pipelined: independent windows search in
				// parallel, replies matched by request ID.
				// The per-connection cap blocks the reader
				// when a client pipelines too far ahead.
				connSem <- struct{}{}
				jobs.Add(1)
				go func(f proto.Frame) {
					defer jobs.Done()
					defer func() { <-connSem }()
					s.serveUpload(f, out)
				}(frame)
			} else {
				// v1 carries no IDs: replies must keep
				// request order, so serve inline.
				s.serveUpload(frame, out)
			}
		default:
			s.Metrics.Errors.Add(1)
			s.enqueueError(out, frame, 400, fmt.Sprintf("unexpected message type %d", frame.Type))
		}
	}
	// Let in-flight searches finish and their replies flush before
	// the deferred close — this is the graceful-drain half of
	// Shutdown, and it also runs on ordinary disconnects.
	jobs.Wait()
	close(out)
	<-writerDone
}

// isDrainErr reports whether a read error is the deadline Shutdown
// planted to stop this connection's intake.
func isDrainErr(err error, s *Server) bool {
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// serveUpload answers one upload and queues its reply (mirroring the
// request's frame version and ID). Cache hits reply immediately;
// everything else goes through the batching collector, which bounds
// concurrent shard scans by the worker pool.
func (s *Server) serveUpload(frame proto.Frame, out chan<- outFrame) {
	defer s.Metrics.leaveFlight()
	start := time.Now()
	// Errored requests count toward the latency sum too, so
	// MeanLatency stays an honest per-request figure.
	defer func() { s.Metrics.RequestNanos.Add(time.Since(start).Nanoseconds()) }()
	upload, err := proto.DecodeUpload(frame.Payload)
	if err != nil {
		s.Metrics.Errors.Add(1)
		s.enqueueError(out, frame, 400, err.Error())
		return
	}
	if s.searchHook != nil {
		s.searchHook(upload)
	}
	p := &pending{window: proto.Dequantize(upload.Samples, upload.Scale)}
	hit := false
	if s.cache != nil {
		if key, ok := windowFingerprint(p.window); ok {
			p.key = key
			if entries, cached := s.cache.get(key); cached {
				s.Metrics.CacheHits.Add(1)
				p.entries, hit = entries, true
			} else {
				s.Metrics.CacheMisses.Add(1)
			}
		}
	}
	if !hit {
		s.dispatch(p)
	}
	if p.err != nil {
		s.Metrics.Errors.Add(1)
		s.enqueueError(out, frame, 500, p.err.Error())
		return
	}
	payload := proto.EncodeCorrSet(&proto.CorrSet{Seq: upload.Seq, Entries: p.entries})
	out <- outFrame{version: frame.Version, typ: proto.TypeCorrSet,
		id: frame.ID, payload: payload}
}

// enqueueError queues an ErrorMsg reply mirroring the offending
// frame's version and ID.
func (s *Server) enqueueError(out chan<- outFrame, frame proto.Frame, code uint16, text string) {
	out <- outFrame{version: frame.Version, typ: proto.TypeError, id: frame.ID,
		payload: proto.EncodeError(&proto.ErrorMsg{Code: code, Text: text})}
}

// Search answers one upload: run Algorithm 1 and assemble the
// correlation set with continuation samples. It is safe for
// concurrent use. It bypasses the batching collector and the cache —
// the network path adds those; Search is the direct, always-fresh
// surface.
func (s *Server) Search(upload *proto.Upload) (*proto.CorrSet, error) {
	window := proto.Dequantize(upload.Samples, upload.Scale)
	res, err := s.searcher.Algorithm1(window)
	if err != nil {
		return nil, err
	}
	s.Metrics.Evaluations.Add(int64(res.Evaluated))
	return &proto.CorrSet{Seq: upload.Seq, Entries: s.assembleEntries(res, len(window))}, nil
}

// assembleEntries attaches the continuation samples to every retrieved
// match: from the matched offset forward, the configured horizon,
// clipped exactly to the end of the parent recording. Matches with
// less than one window of continuation left are dropped — the edge
// cannot track them even one iteration.
func (s *Server) assembleEntries(res *search.Result, windowLen int) []proto.CorrEntry {
	horizon := int(s.cfg.HorizonSeconds * s.cfg.BaseRate)
	sets := s.store.Sets()
	var entries []proto.CorrEntry
	for _, m := range res.Matches {
		if m.SetID < 0 || m.SetID >= len(sets) {
			continue
		}
		set := sets[m.SetID]
		rec, ok := s.store.Record(set.RecordID)
		if !ok {
			continue
		}
		n := horizon
		if avail := len(rec.Samples) - (set.Start + m.Beta); avail < n {
			n = avail
		}
		if n < windowLen {
			continue
		}
		samples, ok := s.store.Window(set, m.Beta, n)
		if !ok {
			continue
		}
		counts, scale := proto.Quantize(samples)
		entries = append(entries, proto.CorrEntry{
			SetID:     int32(m.SetID),
			Omega:     float32(m.Omega),
			Beta:      int32(m.Beta),
			Anomalous: set.Anomalous,
			Class:     uint8(set.Class),
			Archetype: uint16(set.Archetype),
			Scale:     scale,
			Samples:   counts,
		})
	}
	return entries
}
