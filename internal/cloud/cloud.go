// Package cloud implements the cloud tier of the EMAP framework as a
// network service: it hosts the mega-database, answers each uploaded
// one-second window with the top-K signal correlation set (Algorithm
// 1), and attaches to every match the continuation samples the edge
// needs for local tracking — the payload whose download time Fig. 4b
// budgets at under 200 ms for 100 signals.
//
// One server process serves many tenants: a registry of live tenant
// stores (internal/mdb.Registry) replaces the single frozen store, so
// each patient cohort owns an independently growing mega-database.
// Version-3 frames carry a tenant ID and route to that tenant's store;
// v1/v2 peers, whose frames carry no tenant, land on the default
// tenant, so old edges keep working unchanged. A TypeIngest message
// pushes a preprocessed recording into the tenant's store while that
// same store is being searched — the store's epoch snapshots keep
// in-flight scans stable (see internal/mdb).
//
// The package is layered so the cluster tier (internal/cluster) can
// recombine the pieces: Transport (transport.go) owns the connection
// machinery — listener, per-connection reader/writer goroutines,
// version negotiation, pipelining — and serves frames through any
// FrameHandler; Engine (engine.go) is the canonical handler — the
// tenant registry, per-tenant serving state, and the shared worker
// pool — with no networking of its own. Server composes the two, and
// is what single-process deployments use.
//
// The service speaks all protocol versions (see internal/proto): v1
// connections are served serially in request order, while v2/v3 frames
// carry request IDs, so each connection runs a reader goroutine that
// dispatches uploads to a bounded worker pool and a single writer
// goroutine that drains a response queue — independent windows search
// in parallel and replies may leave out of order.
//
// Two scan-once-serve-many layers sit between an upload and the shard
// scan, both per-tenant. A group-commit batching collector (batch.go)
// coalesces the same-tenant uploads queued behind busy workers into
// one multi-query search (search.AlgorithmN), so N in-flight windows
// cost one pass of memory bandwidth per signal-set instead of N;
// Config.MaxBatch bounds the coalescing and Config.BatchWindow
// optionally trades latency for bigger batches. In front of the
// collector, a bounded LRU cache (cache.go) keyed by a quantized
// fingerprint of the window answers repeated near-identical uploads —
// the tracking-loop steady state — without any scan at all; each
// tenant owns its cache, so cached sets can never cross patients'
// stores, and an ingest flushes only its own tenant's cache.
package cloud

import (
	"context"
	"fmt"
	"log"
	"net"
	"runtime"
	"sync/atomic"
	"time"

	"emap/internal/iofault"
	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/search"
	"emap/internal/wal"
)

// Config parameterises the cloud service.
type Config struct {
	// Search configures Algorithm 1 (zero values take paper
	// defaults).
	Search search.Params
	// HorizonSeconds is the continuation horizon sent per match
	// (default 8 s).
	HorizonSeconds float64
	// BaseRate is the sampling rate (default 256 Hz).
	BaseRate float64
	// SliceLen is the signal-set length ingested recordings are
	// sliced into (default 1000, paper §V-B).
	SliceLen int
	// Workers bounds how many uploads search concurrently across
	// all connections and tenants (default GOMAXPROCS).
	Workers int
	// MaxInFlight bounds how many uploads one connection may have
	// queued or searching (default 4×Workers). When a v2/v3 client
	// pipelines past this, the reader stops consuming frames and
	// TCP backpressure does the rest — goroutines and held payloads
	// stay bounded.
	MaxInFlight int
	// MaxBatch bounds how many queued same-tenant uploads one
	// batched search pass may serve (default 32). 1 disables
	// coalescing: every upload scans alone, the pre-batching
	// behaviour.
	MaxBatch int
	// BatchWindow is how long a batch leader waits for further
	// uploads to join before searching. The default (0) adds no
	// artificial delay: a lone request on an idle server searches
	// immediately, and batches still form naturally from whatever
	// queues behind busy workers.
	BatchWindow time.Duration
	// CacheSize bounds each tenant's correlation-set cache in
	// entries (default 256). Negative disables caching.
	CacheSize int
	// TenantRate admits at most this many requests per second per
	// tenant (token bucket; refusals answer CodeRateLimited). 0
	// disables per-tenant rate limiting.
	TenantRate float64
	// TenantBurst is the token-bucket depth when TenantRate is set
	// (default max(8, TenantRate): one second of headroom).
	TenantBurst int
	// ShedQueue enables load shedding: when this many uploads are
	// queued for or occupying the worker pool, further
	// routine-priority uploads are refused with CodeShed instead of
	// queueing behind the backlog; anomaly-priority uploads (see
	// proto.PriAnomaly) and cache hits are always served. 0 disables
	// shedding.
	ShedQueue int
	// HotBytes caps, per tenant, the bytes quantized store records may
	// hold promoted above their canonical int16 payload (hot float64
	// materialisations, warm heap copies of mmapped data) — the knob
	// that keeps a many-tenant process under RAM while stores exceed
	// it. 0 disables the cap. See mdb.Store.SetTierBudget.
	HotBytes int64
	// StoreFormat selects the snapshot format tenant stores persist
	// in; mdb.FormatColumnar additionally makes freshly created tenant
	// stores quantized (int16-canonical ingest). Zero keeps each
	// store's own format (gob for new stores).
	StoreFormat mdb.Format
	// WALDir, when set, makes ingest crash-safe: every accepted
	// TypeIngest is journaled to a per-tenant write-ahead log in this
	// directory BEFORE it is inserted (and, under WALSync=always,
	// before it is acknowledged), and tenant opens replay the log over
	// the snapshot — so acknowledged recordings survive a kill -9
	// between persists. Empty disables the WAL.
	WALDir string
	// WALSync is the log fsync policy (default wal.SyncAlways: ack
	// after durable); WALSyncInterval is the wal.SyncInterval cadence.
	WALSync         wal.Policy
	WALSyncInterval time.Duration
	// WALFS overrides the filesystem the logs live on; durability
	// tests inject an iofault.Faulty here. Nil uses the real OS.
	WALFS iofault.FS
	// IdleTimeout, when positive, reaps connections that deliver no
	// frame for this long — the slow-loris guard. Disabled by default
	// (netsim tests hold idle pipes open by design).
	IdleTimeout time.Duration
	// DefaultTenant is the tenant that v1/v2 peers and tenant-less
	// v3 frames land on (default "default").
	DefaultTenant string
	// MaxVersion caps the protocol version the server negotiates
	// (default proto.MaxVersion). Deployments mid-rollout can pin
	// the fleet to an older version.
	MaxVersion uint8
	// Logger receives per-connection diagnostics; nil disables
	// logging.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.HorizonSeconds <= 0 {
		c.HorizonSeconds = 8
	}
	if c.BaseRate <= 0 {
		c.BaseRate = 256
	}
	if c.SliceLen <= 0 {
		c.SliceLen = 1000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * c.Workers
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = DefaultTenant
	}
	if c.MaxVersion == 0 || c.MaxVersion > proto.MaxVersion {
		c.MaxVersion = proto.MaxVersion
	}
	return c
}

// transportConfig derives the connection-layer slice of a Config.
func (c Config) TransportConfig(m *Metrics) TransportConfig {
	return TransportConfig{
		MaxInFlight: c.MaxInFlight,
		MaxVersion:  c.MaxVersion,
		IdleTimeout: c.IdleTimeout,
		Logger:      c.Logger,
		Metrics:     m,
	}
}

// Metrics counts server activity (all fields atomic). The server
// keeps one registry-wide Metrics plus one per tenant (MetricsFor).
type Metrics struct {
	Connections atomic.Int64
	Requests    atomic.Int64
	Errors      atomic.Int64
	// InFlight is the number of uploads currently queued or
	// searching; PeakInFlight is its high-water mark.
	InFlight     atomic.Int64
	PeakInFlight atomic.Int64
	// RequestNanos accumulates per-request service time (decode →
	// reply queued); RequestNanos/Requests is the mean latency.
	RequestNanos atomic.Int64
	// Batches counts batched search passes; BatchedRequests counts
	// the uploads they served, so BatchedRequests/Batches is the
	// mean coalescing factor (see BatchSizeMean).
	Batches         atomic.Int64
	BatchedRequests atomic.Int64
	// CacheHits and CacheMisses count correlation-set cache lookups
	// for cacheable uploads.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Evaluations accumulates ω evaluations performed by the shard
	// scans — the memory-bandwidth cost batching and caching exist
	// to amortize.
	Evaluations atomic.Int64
	// Ingests counts recordings inserted via TypeIngest;
	// IngestedSets counts the signal-sets they produced.
	Ingests      atomic.Int64
	IngestedSets atomic.Int64
	// SearchBacklog is the number of uploads currently queued for or
	// occupying the worker pool (cache hits never enter it); it is
	// the saturation signal admission control sheds on.
	SearchBacklog atomic.Int64
	// RateLimited counts requests refused by the per-tenant token
	// bucket (CodeRateLimited); Shed counts routine-priority uploads
	// refused under saturation (CodeShed).
	RateLimited atomic.Int64
	Shed        atomic.Int64
	// Panics counts handler panics recovered by the transport and the
	// batch leader: each failed exactly one request with a 5xx-class
	// error while the worker pool kept serving.
	Panics atomic.Int64
	// PersistErrors counts eviction-time snapshot persists that failed
	// (the tenant slot survives and the persist retries on the next
	// eviction pass).
	PersistErrors atomic.Int64
	// IdleReaped counts connections closed by the idle read deadline
	// (Config.IdleTimeout) — stalled half-open peers, not drains.
	IdleReaped atomic.Int64
}

// MetricsSnapshot is a plain-value copy of a Metrics, taken field by
// field with atomic loads — the race-safe way to read the whole
// struct at once (individual counters may still advance between
// loads; no field is ever torn).
type MetricsSnapshot struct {
	Connections     int64
	Requests        int64
	Errors          int64
	InFlight        int64
	PeakInFlight    int64
	SearchBacklog   int64
	RateLimited     int64
	Shed            int64
	Batches         int64
	BatchedRequests int64
	CacheHits       int64
	CacheMisses     int64
	Evaluations     int64
	Ingests         int64
	IngestedSets    int64
	Panics          int64
	PersistErrors   int64
	IdleReaped      int64
	// MeanLatency and BatchSizeMean are the derived figures of the
	// same-named methods, computed from the snapshot's own loads.
	MeanLatency   time.Duration
	BatchSizeMean float64
}

// Snapshot returns a race-safe copy of every counter and gauge.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Connections:     m.Connections.Load(),
		Requests:        m.Requests.Load(),
		Errors:          m.Errors.Load(),
		InFlight:        m.InFlight.Load(),
		PeakInFlight:    m.PeakInFlight.Load(),
		SearchBacklog:   m.SearchBacklog.Load(),
		RateLimited:     m.RateLimited.Load(),
		Shed:            m.Shed.Load(),
		Batches:         m.Batches.Load(),
		BatchedRequests: m.BatchedRequests.Load(),
		CacheHits:       m.CacheHits.Load(),
		CacheMisses:     m.CacheMisses.Load(),
		Evaluations:     m.Evaluations.Load(),
		Ingests:         m.Ingests.Load(),
		IngestedSets:    m.IngestedSets.Load(),
		Panics:          m.Panics.Load(),
		PersistErrors:   m.PersistErrors.Load(),
		IdleReaped:      m.IdleReaped.Load(),
	}
	if nanos := m.RequestNanos.Load(); s.Requests > 0 {
		s.MeanLatency = time.Duration(nanos / s.Requests)
	}
	if s.Batches > 0 {
		s.BatchSizeMean = float64(s.BatchedRequests) / float64(s.Batches)
	}
	return s
}

// MeanLatency returns the mean per-request service time.
func (m *Metrics) MeanLatency() time.Duration {
	n := m.Requests.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(m.RequestNanos.Load() / n)
}

// BatchSizeMean returns the mean number of uploads served per batched
// search pass, or 0 before the first pass.
func (m *Metrics) BatchSizeMean() float64 {
	n := m.Batches.Load()
	if n == 0 {
		return 0
	}
	return float64(m.BatchedRequests.Load()) / float64(n)
}

func (m *Metrics) enterFlight() {
	n := m.InFlight.Add(1)
	for {
		peak := m.PeakInFlight.Load()
		if n <= peak || m.PeakInFlight.CompareAndSwap(peak, n) {
			return
		}
	}
}

func (m *Metrics) leaveFlight() { m.InFlight.Add(-1) }

// Server is the cloud tier as one process: a tenant Engine behind its
// own Transport. Engine methods (Search, Ingest, MetricsFor, Tenants,
// Registry, the Metrics field) promote through the embedding; the
// transport methods below put the engine on the wire.
type Server struct {
	*Engine
	tr *Transport
}

// NewServer returns a single-tenant server over the given
// mega-database, which becomes the default tenant of an in-memory
// registry. The store may be nil or empty: a tenant may start empty
// and fill via ingest, and searches against an empty store return an
// empty correlation set.
func NewServer(store *mdb.Store, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if store == nil {
		// The adopted default store must follow the configured snapshot
		// format, like every store the registry would create itself.
		if cfg.StoreFormat == mdb.FormatColumnar {
			store = mdb.NewQuantizedStore()
		} else {
			store = mdb.NewStore()
		}
	}
	reg, err := mdb.NewRegistry("", 0)
	if err != nil {
		return nil, err
	}
	// Build the server (which enables the WAL on the registry when
	// configured) BEFORE adopting the default tenant, so the adopted
	// store replays its journal and gets a live log like any other.
	srv, err := NewRegistryServer(reg, cfg)
	if err != nil {
		return nil, err
	}
	if err := reg.Adopt(cfg.DefaultTenant, store); err != nil {
		return nil, fmt.Errorf("cloud: adopting default tenant: %w", err)
	}
	return srv, nil
}

// NewRegistryServer returns a multi-tenant server over the given
// tenant registry. Stores open lazily as requests name them; v1/v2
// peers land on Config.DefaultTenant.
func NewRegistryServer(reg *mdb.Registry, cfg Config) (*Server, error) {
	eng, err := NewEngine(reg, cfg)
	if err != nil {
		return nil, err
	}
	// Engine and transport share one Metrics: the transport counts
	// connections and request flight, the engine counts everything
	// else, and callers read it all off Server.Metrics.
	return &Server{
		Engine: eng,
		tr:     NewTransport(eng, eng.cfg.TransportConfig(&eng.Metrics)),
	}, nil
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) error { return s.tr.Serve(l) }

// HandleConn serves one edge connection until it fails, the peer
// disconnects, or the server drains.
func (s *Server) HandleConn(conn net.Conn) { s.tr.HandleConn(conn) }

// Close stops the accept loop and terminates active connections
// immediately, abandoning any in-flight replies.
func (s *Server) Close() error {
	s.Engine.Stop()
	return s.tr.Close()
}

// Shutdown drains the server gracefully: it stops accepting, stops
// reading new requests, lets every in-flight search complete and its
// reply flush, then closes the connections. If ctx expires first the
// remaining connections are closed hard and ctx.Err() is returned.
// Persisting tenant stores is the registry's job (Registry().Close()).
func (s *Server) Shutdown(ctx context.Context) error {
	s.Engine.Stop()
	return s.tr.Shutdown(ctx)
}
