// Package cloud implements the cloud tier of the EMAP framework as a
// network service: it hosts the mega-database, answers each uploaded
// one-second window with the top-K signal correlation set (Algorithm
// 1), and attaches to every match the continuation samples the edge
// needs for local tracking — the payload whose download time Fig. 4b
// budgets at under 200 ms for 100 signals.
//
// One server process serves many tenants: a registry of live tenant
// stores (internal/mdb.Registry) replaces the single frozen store, so
// each patient cohort owns an independently growing mega-database.
// Version-3 frames carry a tenant ID and route to that tenant's store;
// v1/v2 peers, whose frames carry no tenant, land on the default
// tenant, so old edges keep working unchanged. A TypeIngest message
// pushes a preprocessed recording into the tenant's store while that
// same store is being searched — the store's epoch snapshots keep
// in-flight scans stable (see internal/mdb).
//
// The service speaks all protocol versions (see internal/proto): v1
// connections are served serially in request order, while v2/v3 frames
// carry request IDs, so each connection runs a reader goroutine that
// dispatches uploads to a bounded worker pool and a single writer
// goroutine that drains a response queue — independent windows search
// in parallel and replies may leave out of order.
//
// Two scan-once-serve-many layers sit between an upload and the shard
// scan, both per-tenant. A group-commit batching collector (batch.go)
// coalesces the same-tenant uploads queued behind busy workers into
// one multi-query search (search.AlgorithmN), so N in-flight windows
// cost one pass of memory bandwidth per signal-set instead of N;
// Config.MaxBatch bounds the coalescing and Config.BatchWindow
// optionally trades latency for bigger batches. In front of the
// collector, a bounded LRU cache (cache.go) keyed by a quantized
// fingerprint of the window answers repeated near-identical uploads —
// the tracking-loop steady state — without any scan at all; each
// tenant owns its cache, so cached sets can never cross patients'
// stores, and an ingest flushes only its own tenant's cache.
package cloud

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/search"
)

// Config parameterises the cloud service.
type Config struct {
	// Search configures Algorithm 1 (zero values take paper
	// defaults).
	Search search.Params
	// HorizonSeconds is the continuation horizon sent per match
	// (default 8 s).
	HorizonSeconds float64
	// BaseRate is the sampling rate (default 256 Hz).
	BaseRate float64
	// SliceLen is the signal-set length ingested recordings are
	// sliced into (default 1000, paper §V-B).
	SliceLen int
	// Workers bounds how many uploads search concurrently across
	// all connections and tenants (default GOMAXPROCS).
	Workers int
	// MaxInFlight bounds how many uploads one connection may have
	// queued or searching (default 4×Workers). When a v2/v3 client
	// pipelines past this, the reader stops consuming frames and
	// TCP backpressure does the rest — goroutines and held payloads
	// stay bounded.
	MaxInFlight int
	// MaxBatch bounds how many queued same-tenant uploads one
	// batched search pass may serve (default 32). 1 disables
	// coalescing: every upload scans alone, the pre-batching
	// behaviour.
	MaxBatch int
	// BatchWindow is how long a batch leader waits for further
	// uploads to join before searching. The default (0) adds no
	// artificial delay: a lone request on an idle server searches
	// immediately, and batches still form naturally from whatever
	// queues behind busy workers.
	BatchWindow time.Duration
	// CacheSize bounds each tenant's correlation-set cache in
	// entries (default 256). Negative disables caching.
	CacheSize int
	// DefaultTenant is the tenant that v1/v2 peers and tenant-less
	// v3 frames land on (default "default").
	DefaultTenant string
	// MaxVersion caps the protocol version the server negotiates
	// (default proto.MaxVersion). Deployments mid-rollout can pin
	// the fleet to an older version.
	MaxVersion uint8
	// Logger receives per-connection diagnostics; nil disables
	// logging.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.HorizonSeconds <= 0 {
		c.HorizonSeconds = 8
	}
	if c.BaseRate <= 0 {
		c.BaseRate = 256
	}
	if c.SliceLen <= 0 {
		c.SliceLen = 1000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * c.Workers
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = DefaultTenant
	}
	if c.MaxVersion == 0 || c.MaxVersion > proto.MaxVersion {
		c.MaxVersion = proto.MaxVersion
	}
	return c
}

// Metrics counts server activity (all fields atomic). The server
// keeps one registry-wide Metrics plus one per tenant (MetricsFor).
type Metrics struct {
	Connections atomic.Int64
	Requests    atomic.Int64
	Errors      atomic.Int64
	// InFlight is the number of uploads currently queued or
	// searching; PeakInFlight is its high-water mark.
	InFlight     atomic.Int64
	PeakInFlight atomic.Int64
	// RequestNanos accumulates per-request service time (decode →
	// reply queued); RequestNanos/Requests is the mean latency.
	RequestNanos atomic.Int64
	// Batches counts batched search passes; BatchedRequests counts
	// the uploads they served, so BatchedRequests/Batches is the
	// mean coalescing factor (see BatchSizeMean).
	Batches         atomic.Int64
	BatchedRequests atomic.Int64
	// CacheHits and CacheMisses count correlation-set cache lookups
	// for cacheable uploads.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Evaluations accumulates ω evaluations performed by the shard
	// scans — the memory-bandwidth cost batching and caching exist
	// to amortize.
	Evaluations atomic.Int64
	// Ingests counts recordings inserted via TypeIngest;
	// IngestedSets counts the signal-sets they produced.
	Ingests      atomic.Int64
	IngestedSets atomic.Int64
}

// MeanLatency returns the mean per-request service time.
func (m *Metrics) MeanLatency() time.Duration {
	n := m.Requests.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(m.RequestNanos.Load() / n)
}

// BatchSizeMean returns the mean number of uploads served per batched
// search pass, or 0 before the first pass.
func (m *Metrics) BatchSizeMean() float64 {
	n := m.Batches.Load()
	if n == 0 {
		return 0
	}
	return float64(m.BatchedRequests.Load()) / float64(n)
}

func (m *Metrics) enterFlight() {
	n := m.InFlight.Add(1)
	for {
		peak := m.PeakInFlight.Load()
		if n <= peak || m.PeakInFlight.CompareAndSwap(peak, n) {
			return
		}
	}
}

func (m *Metrics) leaveFlight() { m.InFlight.Add(-1) }

// outFrame is one queued response awaiting the writer goroutine.
type outFrame struct {
	version uint8
	typ     proto.MsgType
	id      uint32
	tenant  string
	payload []byte
}

// Server is the cloud tier: a registry of live tenant stores behind
// one listener. Each request routes to its tenant's store, searcher,
// cache and batch collector; the worker pool is shared.
type Server struct {
	cfg      Config
	registry *mdb.Registry
	sem      chan struct{} // bounded worker pool, shared by all tenants

	// done is closed when the server stops (Close or Shutdown); batch
	// leaders waiting out a collection window select on it so a drain
	// is never delayed by up to a full BatchWindow.
	done     chan struct{}
	stopOnce sync.Once

	tmu     sync.Mutex
	tenants map[string]*tenant // serving state per open tenant

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	draining bool
	conns    map[net.Conn]struct{}
	handlers sync.WaitGroup

	// searchHook, when set, runs on the request path after decoding,
	// before the cache and the batching collector — tests use it to
	// hold requests in flight.
	searchHook func(*proto.Upload)

	// Metrics exposes registry-wide request counters and gauges;
	// MetricsFor exposes the per-tenant breakdown.
	Metrics Metrics
}

// NewServer returns a single-tenant server over the given
// mega-database, which becomes the default tenant of an in-memory
// registry. The store may be nil or empty: a tenant may start empty
// and fill via ingest, and searches against an empty store return an
// empty correlation set.
func NewServer(store *mdb.Store, cfg Config) (*Server, error) {
	if store == nil {
		store = mdb.NewStore()
	}
	cfg = cfg.withDefaults()
	reg, err := mdb.NewRegistry("", 0)
	if err != nil {
		return nil, err
	}
	if err := reg.Adopt(cfg.DefaultTenant, store); err != nil {
		return nil, fmt.Errorf("cloud: adopting default tenant: %w", err)
	}
	return NewRegistryServer(reg, cfg)
}

// NewRegistryServer returns a multi-tenant server over the given
// tenant registry. Stores open lazily as requests name them; v1/v2
// peers land on Config.DefaultTenant.
func NewRegistryServer(reg *mdb.Registry, cfg Config) (*Server, error) {
	if reg == nil {
		return nil, errors.New("cloud: nil registry")
	}
	cfg = cfg.withDefaults()
	// Fail at construction, not on the first v1/v2 request: every
	// tenant-less frame routes here.
	if !mdb.ValidTenantID(cfg.DefaultTenant) {
		return nil, fmt.Errorf("cloud: invalid default tenant ID %q", cfg.DefaultTenant)
	}
	s := &Server{
		cfg:      cfg,
		registry: reg,
		sem:      make(chan struct{}, cfg.Workers),
		done:     make(chan struct{}),
		tenants:  make(map[string]*tenant),
		conns:    make(map[net.Conn]struct{}),
	}
	// Evicted tenants lose their serving state too: a reopened
	// tenant must not search through a searcher over the old store.
	// The delete is conditional on store identity so a notification
	// racing a reopen can never destroy the reopened tenant's fresh
	// state.
	reg.OnEvict = func(id string, store *mdb.Store) {
		s.tmu.Lock()
		if t, ok := s.tenants[id]; ok && t.store == store {
			delete(s.tenants, id)
		}
		s.tmu.Unlock()
	}
	return s, nil
}

// Registry exposes the server's tenant registry (for shutdown flushes
// and operator tooling).
func (s *Server) Registry() *mdb.Registry { return s.registry }

// tenantFor resolves a wire tenant ID ("" = default tenant) to its
// serving state, opening the store through the registry if needed.
func (s *Server) tenantFor(id string) (*tenant, error) {
	if id == "" {
		id = s.cfg.DefaultTenant
	}
	for {
		s.tmu.Lock()
		if t, ok := s.tenants[id]; ok {
			s.tmu.Unlock()
			return t, nil
		}
		s.tmu.Unlock()
		// Open outside tmu: the registry may evict another tenant
		// here, and its OnEvict hook takes tmu.
		store, err := s.registry.Open(id)
		if err != nil {
			return nil, err
		}
		s.tmu.Lock()
		if t, ok := s.tenants[id]; ok {
			s.tmu.Unlock()
			return t, nil
		}
		// The registry may have evicted this very tenant between the
		// Open and here (another tenant's Open needed the slot); a
		// serving state built on the detached store would route all
		// future traffic to a store the registry no longer persists.
		// Re-check under tmu — OnEvict also takes tmu, so an eviction
		// observed here has already dropped (or will drop) the map
		// entry, and a miss sends us back around to reopen.
		if cur, ok := s.registry.Get(id); !ok || cur != store {
			s.tmu.Unlock()
			continue
		}
		t := newTenant(id, store, s.cfg)
		s.tenants[id] = t
		s.tmu.Unlock()
		return t, nil
	}
}

// Tenants returns the tenants with live serving state.
func (s *Server) Tenants() []string {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	out := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		out = append(out, id)
	}
	return out
}

// MetricsFor returns the metrics of one tenant ("" = default tenant),
// or nil when the tenant has no serving state yet. Per-tenant counts
// are isolated: tenant A's cache hits never show up under tenant B.
func (s *Server) MetricsFor(id string) *Metrics {
	if id == "" {
		id = s.cfg.DefaultTenant
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if t, ok := s.tenants[id]; ok {
		return &t.metrics
	}
	return nil
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.HandleConn(conn)
	}
}

// Close stops the accept loop and terminates active connections
// immediately, abandoning any in-flight replies.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

// Shutdown drains the server gracefully: it stops accepting, stops
// reading new requests, lets every in-flight search complete and its
// reply flush, then closes the connections. If ctx expires first the
// remaining connections are closed hard and ctx.Err() is returned.
// Persisting tenant stores is the registry's job (Registry().Close()).
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	s.closed = true
	s.draining = true
	l := s.listener
	// Wake blocked readers: their next ReadFrameAny fails with a
	// deadline error and the per-connection drain path runs.
	past := time.Unix(1, 0)
	for conn := range s.conns {
		conn.SetReadDeadline(past)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close; handlers exit on their own once their
		// in-flight searches return.
		s.Close()
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// HandleConn serves one edge connection until it fails, the peer
// disconnects, or the server drains. The calling goroutine is the
// frame reader; uploads and ingests are dispatched to the server-wide
// worker pool and all replies funnel through one writer goroutine, so
// v2/v3 clients can keep many windows in flight on one connection.
func (s *Server) HandleConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.handlers.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.handlers.Done()
	}()
	s.Metrics.Connections.Add(1)

	out := make(chan outFrame, 16)
	writerDone := make(chan struct{})
	var writeFailed atomic.Bool
	go func() {
		defer close(writerDone)
		for f := range out {
			if writeFailed.Load() {
				continue // drain abandoned replies
			}
			if err := proto.WriteFrameTenant(conn, f.version, f.typ, f.id, f.tenant, f.payload); err != nil {
				// A dead write means a dead peer: tear the
				// connection down so the reader unblocks and
				// the handler exits, instead of looping on a
				// broken conn.
				s.Metrics.Errors.Add(1)
				s.logf("cloud: write: %v", err)
				writeFailed.Store(true)
				conn.Close()
			}
		}
	}()

	var jobs sync.WaitGroup
	connSem := make(chan struct{}, s.cfg.MaxInFlight)
	for {
		frame, err := proto.ReadFrameAny(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !isDrainErr(err, s) {
				s.Metrics.Errors.Add(1)
				s.logf("cloud: read: %v", err)
			}
			break
		}
		switch frame.Type {
		case proto.TypeHello:
			hello, herr := proto.DecodeHello(frame.Payload)
			if herr != nil {
				s.Metrics.Errors.Add(1)
				s.enqueueError(out, frame, 400, herr.Error())
				continue
			}
			v := proto.Negotiate(s.cfg.MaxVersion, hello.MaxVersion)
			// The reply travels as a v1 frame: every client
			// understands it, whatever it announced.
			out <- outFrame{version: proto.Version1, typ: proto.TypeHello,
				payload: proto.EncodeHello(&proto.Hello{MaxVersion: v})}
		case proto.TypePing:
			out <- outFrame{version: frame.Version, typ: proto.TypePong,
				id: frame.ID, tenant: frame.Tenant}
		case proto.TypeUpload, proto.TypeIngest:
			s.Metrics.Requests.Add(1)
			s.Metrics.enterFlight()
			serve := s.serveUpload
			if frame.Type == proto.TypeIngest {
				serve = s.serveIngest
			}
			if frame.Version >= proto.Version2 {
				// Pipelined: independent requests run in
				// parallel, replies matched by request ID.
				// The per-connection cap blocks the reader
				// when a client pipelines too far ahead.
				connSem <- struct{}{}
				jobs.Add(1)
				go func(f proto.Frame) {
					defer jobs.Done()
					defer func() { <-connSem }()
					serve(f, out)
				}(frame)
			} else {
				// v1 carries no IDs: replies must keep
				// request order, so serve inline.
				serve(frame, out)
			}
		default:
			s.Metrics.Errors.Add(1)
			s.enqueueError(out, frame, 400, fmt.Sprintf("unexpected message type %d", frame.Type))
		}
	}
	// Let in-flight searches finish and their replies flush before
	// the deferred close — this is the graceful-drain half of
	// Shutdown, and it also runs on ordinary disconnects.
	jobs.Wait()
	close(out)
	<-writerDone
}

// isDrainErr reports whether a read error is the deadline Shutdown
// planted to stop this connection's intake.
func isDrainErr(err error, s *Server) bool {
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// serveUpload answers one upload and queues its reply (mirroring the
// request's frame version, ID and tenant). Cache hits reply
// immediately; everything else goes through the tenant's batching
// collector, which bounds concurrent shard scans by the shared worker
// pool.
func (s *Server) serveUpload(frame proto.Frame, out chan<- outFrame) {
	defer s.Metrics.leaveFlight()
	start := time.Now()
	// Errored requests count toward the latency sum too, so
	// MeanLatency stays an honest per-request figure.
	defer func() { s.Metrics.RequestNanos.Add(time.Since(start).Nanoseconds()) }()
	upload, err := proto.DecodeUpload(frame.Payload)
	if err != nil {
		s.Metrics.Errors.Add(1)
		s.enqueueError(out, frame, 400, err.Error())
		return
	}
	if s.searchHook != nil {
		s.searchHook(upload)
	}
	t, err := s.tenantFor(frame.Tenant)
	if err != nil {
		s.Metrics.Errors.Add(1)
		s.enqueueError(out, frame, 404, err.Error())
		return
	}
	t.metrics.Requests.Add(1)
	defer func() { t.metrics.RequestNanos.Add(time.Since(start).Nanoseconds()) }()
	p := &pending{window: proto.Dequantize(upload.Samples, upload.Scale)}
	hit := false
	if t.cache != nil {
		if key, ok := windowFingerprint(p.window); ok {
			p.key = key
			entries, gen, cached := t.cache.get(key)
			p.gen = gen
			if cached {
				s.Metrics.CacheHits.Add(1)
				t.metrics.CacheHits.Add(1)
				p.entries, hit = entries, true
			} else {
				s.Metrics.CacheMisses.Add(1)
				t.metrics.CacheMisses.Add(1)
			}
		}
	}
	if !hit {
		s.dispatch(t, p)
	}
	if p.err != nil {
		s.Metrics.Errors.Add(1)
		t.metrics.Errors.Add(1)
		s.enqueueError(out, frame, 500, p.err.Error())
		return
	}
	payload := proto.EncodeCorrSet(&proto.CorrSet{Seq: upload.Seq, Entries: p.entries})
	out <- outFrame{version: frame.Version, typ: proto.TypeCorrSet,
		id: frame.ID, tenant: frame.Tenant, payload: payload}
}

// serveIngest inserts one pushed recording into its tenant's store and
// queues the acknowledgement. The store keeps serving searches while
// the insert runs — in-flight scans hold their epoch snapshot.
func (s *Server) serveIngest(frame proto.Frame, out chan<- outFrame) {
	defer s.Metrics.leaveFlight()
	start := time.Now()
	defer func() { s.Metrics.RequestNanos.Add(time.Since(start).Nanoseconds()) }()
	ing, err := proto.DecodeIngest(frame.Payload)
	if err != nil {
		s.Metrics.Errors.Add(1)
		s.enqueueError(out, frame, 400, err.Error())
		return
	}
	t, err := s.tenantFor(frame.Tenant)
	if err != nil {
		s.Metrics.Errors.Add(1)
		s.enqueueError(out, frame, 404, err.Error())
		return
	}
	t.metrics.Requests.Add(1)
	defer func() { t.metrics.RequestNanos.Add(time.Since(start).Nanoseconds()) }()
	// Inserts share the search worker pool: the copy-on-write view
	// rebuild and the SlidingStats construction are CPU/memory work
	// just like a scan, and must stay bounded however many
	// connections pipeline ingests.
	s.sem <- struct{}{}
	ack, err := s.ingestInto(t, ing)
	<-s.sem
	if err != nil {
		s.Metrics.Errors.Add(1)
		t.metrics.Errors.Add(1)
		code := uint16(409)
		if errors.Is(err, errTenantEvicted) {
			code = 503
		}
		s.enqueueError(out, frame, code, err.Error())
		return
	}
	out <- outFrame{version: frame.Version, typ: proto.TypeIngestAck,
		id: frame.ID, tenant: frame.Tenant, payload: proto.EncodeIngestAck(ack)}
}

// errTenantEvicted marks an ingest that kept colliding with tenant
// evictions (see ingestInto); the client may retry.
var errTenantEvicted = errors.New("cloud: tenant evicted during ingest; retry")

// ingestInto runs the insert, and — when the tenant was evicted while
// it ran — recovers by reopening the tenant and re-running the insert
// against the live store, so the caller's ack always describes a
// store the registry tracks. The eviction's snapshot may or may not
// have captured the first attempt: if it did, the rerun's
// duplicate-ID refusal proves the record is already in the reloaded
// store and is acknowledged as such; if not, the rerun inserts it
// afresh. Only repeated eviction collisions surface as an error.
func (s *Server) ingestInto(t *tenant, ing *proto.Ingest) (*proto.IngestAck, error) {
	for attempt := 0; ; attempt++ {
		ack, err := t.ingest(ing, s.cfg)
		if err != nil {
			if attempt > 0 {
				// The reopened store may already hold the record —
				// the evicted snapshot captured the first attempt.
				if existing, ok := t.ackExisting(ing); ok {
					ack, err = existing, nil
				}
			}
			if err != nil {
				return nil, err
			}
		}
		if cur, ok := s.registry.Get(t.id); ok && cur == t.store {
			s.Metrics.Ingests.Add(1)
			s.Metrics.IngestedSets.Add(int64(ack.Sets))
			return ack, nil
		}
		if attempt >= 2 {
			return nil, fmt.Errorf("%w (tenant %q)", errTenantEvicted, t.id)
		}
		fresh, terr := s.tenantFor(t.id)
		if terr != nil {
			return nil, fmt.Errorf("%w (tenant %q): %v", errTenantEvicted, t.id, terr)
		}
		t = fresh
	}
}

// enqueueError queues an ErrorMsg reply mirroring the offending
// frame's version, ID and tenant.
func (s *Server) enqueueError(out chan<- outFrame, frame proto.Frame, code uint16, text string) {
	out <- outFrame{version: frame.Version, typ: proto.TypeError, id: frame.ID,
		tenant: frame.Tenant, payload: proto.EncodeError(&proto.ErrorMsg{Code: code, Text: text})}
}

// Search answers one upload against the default tenant: run Algorithm
// 1 and assemble the correlation set with continuation samples. It is
// safe for concurrent use. It bypasses the batching collector and the
// cache — the network path adds those; Search is the direct,
// always-fresh surface.
func (s *Server) Search(upload *proto.Upload) (*proto.CorrSet, error) {
	return s.SearchTenant("", upload)
}

// SearchTenant answers one upload against the named tenant's store
// ("" = default tenant), opening it if needed.
func (s *Server) SearchTenant(tenantID string, upload *proto.Upload) (*proto.CorrSet, error) {
	t, err := s.tenantFor(tenantID)
	if err != nil {
		return nil, err
	}
	window := proto.Dequantize(upload.Samples, upload.Scale)
	res, err := t.searcher.Algorithm1(window)
	if err != nil {
		return nil, err
	}
	s.Metrics.Evaluations.Add(int64(res.Evaluated))
	t.metrics.Evaluations.Add(int64(res.Evaluated))
	return &proto.CorrSet{Seq: upload.Seq, Entries: s.assembleEntries(t, res, len(window))}, nil
}

// Ingest inserts one preprocessed recording into the named tenant's
// store ("" = default tenant) — the in-process twin of the TypeIngest
// wire message.
func (s *Server) Ingest(tenantID string, ing *proto.Ingest) (*proto.IngestAck, error) {
	t, err := s.tenantFor(tenantID)
	if err != nil {
		return nil, err
	}
	return s.ingestInto(t, ing)
}

// assembleEntries attaches the continuation samples to every retrieved
// match: from the matched offset forward, the configured horizon,
// clipped exactly to the end of the parent recording. Matches with
// less than one window of continuation left are dropped — the edge
// cannot track them even one iteration. One store snapshot serves the
// whole assembly; signal-set IDs are stable across epochs (the set
// list is append-only), so matches from a slightly older scan epoch
// always resolve.
func (s *Server) assembleEntries(t *tenant, res *search.Result, windowLen int) []proto.CorrEntry {
	horizon := int(s.cfg.HorizonSeconds * s.cfg.BaseRate)
	snap := t.store.Snapshot()
	sets := snap.Sets()
	var entries []proto.CorrEntry
	for _, m := range res.Matches {
		if m.SetID < 0 || m.SetID >= len(sets) {
			continue
		}
		set := sets[m.SetID]
		rec, ok := snap.Record(set.RecordID)
		if !ok {
			continue
		}
		n := horizon
		if avail := len(rec.Samples) - (set.Start + m.Beta); avail < n {
			n = avail
		}
		if n < windowLen {
			continue
		}
		samples, ok := snap.Window(set, m.Beta, n)
		if !ok {
			continue
		}
		counts, scale := proto.Quantize(samples)
		entries = append(entries, proto.CorrEntry{
			SetID:     int32(m.SetID),
			Omega:     float32(m.Omega),
			Beta:      int32(m.Beta),
			Anomalous: set.Anomalous,
			Class:     uint8(set.Class),
			Archetype: uint16(set.Archetype),
			Scale:     scale,
			Samples:   counts,
		})
	}
	return entries
}
