package cloud

import (
	"sync"

	"emap/internal/kernel"
	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/search"
	"emap/internal/synth"
)

// DefaultTenant is the tenant that v1/v2 peers — whose frames carry no
// tenant field — and v3 frames with an empty tenant land on.
const DefaultTenant = "default"

// tenant is one tenant's complete serving state: its live store, the
// searcher over it, its private correlation-set cache, its own batch
// collector (uploads only coalesce with same-tenant uploads — one
// batched pass walks exactly one tenant's shards), and its metrics.
// Caches and metrics are per-tenant so cached correlation sets can
// never leak across patients' stores and per-tenant load is
// observable.
type tenant struct {
	id       string
	store    *mdb.Store
	searcher *search.Searcher
	engine   *kernel.Engine
	cache    *corrCache   // nil when caching is disabled
	limiter  *tokenBucket // nil when rate limiting is disabled

	batchMu sync.Mutex
	forming *batchGroup // open batch accepting same-tenant joiners

	metrics Metrics
}

// newTenant assembles the serving state for one tenant store. Each
// tenant owns a kernel-engine plan cache prewarmed for the transform
// sizes its slice length implies: a full-coverage scan profiles
// segments of SliceLen−1+len(query) samples and a paper-literal scan
// at most SliceLen, so the two prewarmed powers of two cover every
// query shorter than a slice — the steady state. Odd sizes (trailing
// slices, oversize queries) still build lazily.
func newTenant(id string, store *mdb.Store, cfg Config) *tenant {
	eng := kernel.NewEngine()
	eng.Prewarm(cfg.SliceLen, 2*cfg.SliceLen)
	t := &tenant{
		id:       id,
		store:    store,
		searcher: search.NewSearcherWithEngine(store, cfg.Search, eng),
		engine:   eng,
	}
	if cfg.CacheSize > 0 {
		t.cache = newCorrCache(cfg.CacheSize)
	}
	if cfg.TenantRate > 0 {
		t.limiter = newTokenBucket(cfg.TenantRate, cfg.TenantBurst, nil)
	}
	return t
}

// ackExisting builds the acknowledgement for a recording that is
// already in the tenant's store — the eviction-recovery path where an
// earlier attempt's insert reached the persisted snapshot (see
// Server.ingestInto).
func (t *tenant) ackExisting(g *proto.Ingest) (*proto.IngestAck, bool) {
	snap := t.store.Snapshot()
	if _, ok := snap.Record(g.RecordID); !ok {
		return nil, false
	}
	sets := 0
	for _, set := range snap.Sets() {
		if set.RecordID == g.RecordID {
			sets++
		}
	}
	return &proto.IngestAck{
		Seq:          g.Seq,
		Sets:         uint32(sets),
		TotalSets:    uint32(snap.NumSets()),
		TotalRecords: uint32(snap.NumRecords()),
	}, true
}

// insertIngest inserts one decoded recording into a store, slicing and
// labelling it per cfg, and returns the signal-sets created. It is the
// shared insert core of the live ingest path (tenant.ingest) and WAL
// replay (applyWALIngest) — both must store byte-identical data, or a
// recovered store would answer searches differently from the store
// that acknowledged the ingest.
func insertIngest(store *mdb.Store, g *proto.Ingest, cfg Config) (int, error) {
	rec := &mdb.Record{
		ID:        g.RecordID,
		Class:     synth.ClassFromCode(g.Class),
		Archetype: int(g.Archetype),
		Onset:     int(g.Onset),
	}
	labelFn := mdb.LabelFor(rec, mdb.BuildConfig{BaseRate: cfg.BaseRate})
	if store.Quantized() {
		// The wire counts ARE the canonical payload: no dequantize, no
		// float copy — and the record still dequantizes to exactly the
		// samples the float path below would have stored, because both
		// reconstruct count·scale on the same float32 grid.
		return store.InsertQuantized(rec, g.Samples, g.Scale, cfg.SliceLen, labelFn)
	}
	rec.Samples = proto.Dequantize(g.Samples, g.Scale)
	return store.Insert(rec, cfg.SliceLen, labelFn)
}

// ingest inserts one preprocessed recording into the tenant's store,
// slicing and labelling it, and flushes the correlation-set cache:
// cached sets predate the new data, and a search issued after a
// successful ingest must be able to retrieve it.
func (t *tenant) ingest(g *proto.Ingest, cfg Config) (*proto.IngestAck, error) {
	created, err := insertIngest(t.store, g, cfg)
	if err != nil {
		return nil, err
	}
	if t.cache != nil {
		t.cache.reset()
	}
	t.metrics.Ingests.Add(1)
	t.metrics.IngestedSets.Add(int64(created))
	snap := t.store.Snapshot()
	return &proto.IngestAck{
		Seq:          g.Seq,
		Sets:         uint32(created),
		TotalSets:    uint32(snap.NumSets()),
		TotalRecords: uint32(snap.NumRecords()),
	}, nil
}
