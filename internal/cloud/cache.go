package cloud

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"emap/internal/dsp"
	"emap/internal/proto"
)

// corrCache is a bounded LRU of assembled correlation-set entries
// keyed by a quantized fingerprint of the uploaded window. In the
// tracking-loop steady state (paper §V: one upload every fifth
// iteration) consecutive uploads from a stable signal are
// near-identical; the fingerprint quantization folds them onto one key
// so the repeat skips the shard scan entirely.
//
// A cache is owned by exactly one tenant of one Server, so entries can
// never cross tenants' stores, search parameters or horizons — those
// are fixed per tenant. An ingest into the tenant's store resets the
// cache (see tenant.ingest): cached sets predate the new data.
type corrCache struct {
	mu  sync.Mutex
	cap int
	// gen counts resets. A search captures the generation before it
	// runs and stores its result only if no reset intervened —
	// otherwise a scan of a pre-ingest epoch could re-poison the
	// cache right after the ingest flushed it.
	gen   int64
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key     string
	entries []proto.CorrEntry
}

func newCorrCache(capacity int) *corrCache {
	return &corrCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached correlation-set entries for key, refreshing
// its recency, plus the cache generation for a later putAt. The
// returned slice is shared and read-only.
func (c *corrCache) get(key string) ([]proto.CorrEntry, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, c.gen, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).entries, c.gen, true
}

// putAt stores entries under key — unless the cache has been reset
// since generation gen was observed, in which case the entries were
// computed against a stale store epoch and are dropped. Evicts the
// least recently used entry past capacity. The caller must not mutate
// entries afterwards.
func (c *corrCache) putAt(gen int64, key string, entries []proto.CorrEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return
	}
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).entries = entries
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, entries: entries})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached correlation sets.
func (c *corrCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// reset drops every cached correlation set (the store grew; cached
// sets are stale) and invalidates in-flight putAt generations.
func (c *corrCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.ll.Init()
	c.byKey = make(map[string]*list.Element, c.cap)
}

// fingerprintSteps is the quantization resolution of the cache key:
// each z-normalized sample is bucketed into steps of 1/fingerprintSteps
// of its natural O(1) range. Coarse enough that the residual int16
// wire-quantization noise of a re-uploaded identical window never
// splits the key, fine enough that windows from different signals
// collide with negligible probability (any of the ~256 samples
// falling in a different bucket separates the keys).
const fingerprintSteps = 32

// windowFingerprint derives the cache key from an uploaded window:
// z-normalize (amplitude invariance, matching what the search itself
// sees), scale each sample back to O(1) by √n, quantize to
// fingerprintSteps buckets, and pack. ok is false for flat windows,
// which the search answers with an empty set anyway.
func windowFingerprint(window []float64) (string, bool) {
	zq := make([]float64, len(window))
	if dsp.ZNormalizeTo(zq, window) == 0 {
		return "", false
	}
	scale := fingerprintSteps * math.Sqrt(float64(len(zq)))
	b := make([]byte, 2*len(zq))
	for i, v := range zq {
		q := math.Round(v * scale)
		if q > math.MaxInt16 {
			q = math.MaxInt16
		} else if q < math.MinInt16 {
			q = math.MinInt16
		}
		binary.LittleEndian.PutUint16(b[2*i:], uint16(int16(q)))
	}
	return string(b), true
}
