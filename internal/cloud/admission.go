package cloud

import (
	"sync"
	"time"
)

// Admission-control error codes carried by the TypeError reply. They
// are distinct from every other code the cloud emits so clients (and
// the fleet harness) can account refusals without parsing text.
const (
	// CodeRateLimited refuses a request because its tenant exhausted
	// its token bucket (Config.TenantRate). Retrying later succeeds.
	CodeRateLimited uint16 = 429
	// CodeShed refuses a routine-priority upload because the search
	// backlog passed Config.ShedQueue — the worker pool is saturated
	// and shedding cheap-to-retry traffic keeps anomaly-priority
	// uploads inside their latency budget.
	CodeShed uint16 = 529
)

// tokenBucket is a classic leaky token bucket: rate tokens/second
// refill up to burst, one token admits one request. The zero clock
// uses real time; tests inject their own.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b < 1 {
		// A burst below one token could never admit anything; the
		// default also gives quiet tenants one second of headroom.
		b = rate
		if b < 8 {
			b = 8
		}
	}
	t := now()
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: t, now: now}
}

// allow consumes one token if available.
func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// admit runs tenant t's token bucket for one request; a false return
// means the request must be refused with CodeRateLimited. Both
// refusal counters (registry-wide and per-tenant) are bumped here so
// every caller surfaces the refusal in /metrics the same way.
func (e *Engine) admit(t *tenant) bool {
	if t.limiter == nil || t.limiter.allow() {
		return true
	}
	e.Metrics.RateLimited.Add(1)
	t.metrics.RateLimited.Add(1)
	return false
}

// shedRoutine reports whether a routine-priority upload must be shed:
// the search backlog (uploads queued for or occupying the worker
// pool) has reached Config.ShedQueue. Anomaly-priority uploads are
// never shed — the point of shedding is to keep them fast.
func (e *Engine) shedRoutine(t *tenant) bool {
	if e.cfg.ShedQueue <= 0 {
		return false
	}
	if e.Metrics.SearchBacklog.Load() < int64(e.cfg.ShedQueue) {
		return false
	}
	e.Metrics.Shed.Add(1)
	t.metrics.Shed.Add(1)
	return true
}
