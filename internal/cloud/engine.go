package cloud

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/search"
)

// Engine is the tenant-engine layer of the cloud tier, split out from
// the connection transport so a process can host tenant engines without
// owning a listener: a registry of live tenant stores, the per-tenant
// serving state (searcher, correlation-set cache, batch collector,
// metrics), and a worker pool shared across tenants. It implements
// FrameHandler, so a Transport — or a cluster node wrapping it with
// ownership checks — can put it on the wire directly.
type Engine struct {
	cfg      Config
	registry *mdb.Registry
	sem      chan struct{} // bounded worker pool, shared by all tenants

	// done is closed when the engine stops (Stop); batch leaders
	// waiting out a collection window select on it so a drain is never
	// delayed by up to a full BatchWindow.
	done     chan struct{}
	stopOnce sync.Once

	tmu     sync.Mutex
	tenants map[string]*tenant // serving state per open tenant

	// searchHook, when set, runs on the request path after decoding,
	// before the cache and the batching collector — tests use it to
	// hold requests in flight. backlogHook runs later, inside the
	// search backlog window (after admission and the cache, before
	// the batching collector) — a request held there counts as
	// backlog, so shedding is testable deterministically.
	searchHook  func(*proto.Upload)
	backlogHook func(*proto.Upload)

	// Metrics exposes registry-wide request counters and gauges;
	// MetricsFor exposes the per-tenant breakdown. The transport
	// carrying this engine shares the same Metrics.
	Metrics Metrics
}

// NewEngine returns a multi-tenant serving engine over the given tenant
// registry. Stores open lazily as requests name them; v1/v2 peers land
// on Config.DefaultTenant.
func NewEngine(reg *mdb.Registry, cfg Config) (*Engine, error) {
	if reg == nil {
		return nil, errors.New("cloud: nil registry")
	}
	cfg = cfg.withDefaults()
	// Fail at construction, not on the first v1/v2 request: every
	// tenant-less frame routes here.
	if !mdb.ValidTenantID(cfg.DefaultTenant) {
		return nil, fmt.Errorf("cloud: invalid default tenant ID %q", cfg.DefaultTenant)
	}
	e := &Engine{
		cfg:      cfg,
		registry: reg,
		sem:      make(chan struct{}, cfg.Workers),
		done:     make(chan struct{}),
		tenants:  make(map[string]*tenant),
	}
	// Tier policy flows through the registry so every store it opens,
	// adopts, or reloads after eviction carries the same budget and
	// snapshot format.
	if cfg.StoreFormat != 0 {
		reg.SetSaveFormat(cfg.StoreFormat)
	}
	if cfg.HotBytes > 0 {
		reg.SetStoreBudget(cfg.HotBytes)
	}
	// Evicted tenants lose their serving state too: a reopened
	// tenant must not search through a searcher over the old store.
	// The delete is conditional on store identity so a notification
	// racing a reopen can never destroy the reopened tenant's fresh
	// state.
	reg.OnEvict = func(id string, store *mdb.Store) {
		e.tmu.Lock()
		if t, ok := e.tenants[id]; ok && t.store == store {
			delete(e.tenants, id)
		}
		e.tmu.Unlock()
	}
	// A failed eviction-time persist keeps the tenant resident and
	// retries on the next pass; the counter (and log line) is how the
	// failure stops being silent.
	reg.OnPersistError = func(id string, err error) {
		e.Metrics.PersistErrors.Add(1)
		if cfg.Logger != nil {
			cfg.Logger.Printf("cloud: persisting tenant %q: %v", id, err)
		}
	}
	if cfg.WALDir != "" {
		if err := reg.EnableWAL(mdb.WALConfig{
			Dir:      cfg.WALDir,
			Sync:     cfg.WALSync,
			Interval: cfg.WALSyncInterval,
			FS:       cfg.WALFS,
			Apply: func(s *mdb.Store, payload []byte) error {
				return applyWALIngest(s, payload, cfg)
			},
		}); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// applyWALIngest replays one journaled ingest payload (a TypeIngest
// wire payload) into a tenant store being opened. Records the snapshot
// already covers — a checkpoint that crashed before its rename — are
// skipped, keeping replay idempotent.
func applyWALIngest(s *mdb.Store, payload []byte, cfg Config) error {
	ing, err := proto.DecodeIngest(payload)
	if err != nil {
		return fmt.Errorf("cloud: journaled ingest: %w", err)
	}
	if _, ok := s.Record(ing.RecordID); ok {
		return nil
	}
	_, err = insertIngest(s, ing, cfg)
	return err
}

// Stop releases the engine's waiters (batch-collection windows); it
// does not touch the registry. Safe to call more than once.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.done) })
}

// Config returns the engine's effective configuration (defaults
// applied).
func (e *Engine) Config() Config { return e.cfg }

// Registry exposes the engine's tenant registry (for shutdown flushes
// and operator tooling).
func (e *Engine) Registry() *mdb.Registry { return e.registry }

// tenantFor resolves a wire tenant ID ("" = default tenant) to its
// serving state, opening the store through the registry if needed.
func (e *Engine) tenantFor(id string) (*tenant, error) {
	if id == "" {
		id = e.cfg.DefaultTenant
	}
	for {
		e.tmu.Lock()
		if t, ok := e.tenants[id]; ok {
			e.tmu.Unlock()
			return t, nil
		}
		e.tmu.Unlock()
		// Open outside tmu: the registry may evict another tenant
		// here, and its OnEvict hook takes tmu.
		store, err := e.registry.Open(id)
		if err != nil {
			return nil, err
		}
		e.tmu.Lock()
		if t, ok := e.tenants[id]; ok {
			e.tmu.Unlock()
			return t, nil
		}
		// The registry may have evicted this very tenant between the
		// Open and here (another tenant's Open needed the slot); a
		// serving state built on the detached store would route all
		// future traffic to a store the registry no longer persists.
		// Re-check under tmu — OnEvict also takes tmu, so an eviction
		// observed here has already dropped (or will drop) the map
		// entry, and a miss sends us back around to reopen.
		if cur, ok := e.registry.Get(id); !ok || cur != store {
			e.tmu.Unlock()
			continue
		}
		t := newTenant(id, store, e.cfg)
		e.tenants[id] = t
		e.tmu.Unlock()
		return t, nil
	}
}

// Tenants returns the tenants with live serving state.
func (e *Engine) Tenants() []string {
	e.tmu.Lock()
	defer e.tmu.Unlock()
	out := make([]string, 0, len(e.tenants))
	for id := range e.tenants {
		out = append(out, id)
	}
	return out
}

// StoreStatsFor returns the tier-residency statistics of one tenant's
// store ("" = default tenant); ok is false when the tenant has no
// serving state.
func (e *Engine) StoreStatsFor(id string) (mdb.TierStats, bool) {
	if id == "" {
		id = e.cfg.DefaultTenant
	}
	e.tmu.Lock()
	t, ok := e.tenants[id]
	e.tmu.Unlock()
	if !ok {
		return mdb.TierStats{}, false
	}
	return t.store.TierStats(), true
}

// MetricsFor returns the metrics of one tenant ("" = default tenant),
// or nil when the tenant has no serving state yet. Per-tenant counts
// are isolated: tenant A's cache hits never show up under tenant B.
func (e *Engine) MetricsFor(id string) *Metrics {
	if id == "" {
		id = e.cfg.DefaultTenant
	}
	e.tmu.Lock()
	defer e.tmu.Unlock()
	if t, ok := e.tenants[id]; ok {
		return &t.metrics
	}
	return nil
}

// ServeFrame implements FrameHandler: uploads search, ingests insert,
// anything else is refused. Hello/Ping never reach the engine — the
// transport answers them.
func (e *Engine) ServeFrame(f proto.Frame) (proto.MsgType, []byte) {
	switch f.Type {
	case proto.TypeUpload:
		return e.serveUpload(f)
	case proto.TypeIngest:
		return e.serveIngest(f)
	default:
		e.Metrics.Errors.Add(1)
		return proto.TypeError, errorPayload(400, fmt.Sprintf("unexpected message type %d", f.Type))
	}
}

// serveUpload answers one upload. Cache hits reply immediately;
// everything else goes through the tenant's batching collector, which
// bounds concurrent shard scans by the shared worker pool.
func (e *Engine) serveUpload(frame proto.Frame) (proto.MsgType, []byte) {
	start := time.Now()
	// Errored requests count toward the latency sum too, so
	// MeanLatency stays an honest per-request figure.
	defer func() { e.Metrics.RequestNanos.Add(time.Since(start).Nanoseconds()) }()
	upload, err := proto.DecodeUpload(frame.Payload)
	if err != nil {
		e.Metrics.Errors.Add(1)
		return proto.TypeError, errorPayload(400, err.Error())
	}
	if e.searchHook != nil {
		e.searchHook(upload)
	}
	t, err := e.tenantFor(frame.Tenant)
	if err != nil {
		e.Metrics.Errors.Add(1)
		return proto.TypeError, errorPayload(404, err.Error())
	}
	t.metrics.Requests.Add(1)
	defer func() { t.metrics.RequestNanos.Add(time.Since(start).Nanoseconds()) }()
	if !e.admit(t) {
		return proto.TypeError, errorPayload(CodeRateLimited,
			fmt.Sprintf("tenant %q over its admission rate; retry later", t.id))
	}
	p := &pending{window: proto.Dequantize(upload.Samples, upload.Scale)}
	hit := false
	if t.cache != nil {
		if key, ok := windowFingerprint(p.window); ok {
			p.key = key
			entries, gen, cached := t.cache.get(key)
			p.gen = gen
			if cached {
				e.Metrics.CacheHits.Add(1)
				t.metrics.CacheHits.Add(1)
				p.entries, hit = entries, true
			} else {
				e.Metrics.CacheMisses.Add(1)
				t.metrics.CacheMisses.Add(1)
			}
		}
	}
	if !hit {
		// The backlog gauge covers the whole queued-or-scanning
		// stretch; admission sheds routine uploads against it before
		// they join the queue, so a saturated pool stays a bounded
		// queue instead of an unbounded one. Cache hits never get
		// here — they cost no scan and are always served.
		if upload.Priority == proto.PriRoutine && e.shedRoutine(t) {
			return proto.TypeError, errorPayload(CodeShed,
				"server saturated; routine upload shed, retry with backoff")
		}
		e.Metrics.SearchBacklog.Add(1)
		if e.backlogHook != nil {
			e.backlogHook(upload)
		}
		e.dispatch(t, p)
		e.Metrics.SearchBacklog.Add(-1)
	}
	if p.err != nil {
		e.Metrics.Errors.Add(1)
		t.metrics.Errors.Add(1)
		return proto.TypeError, errorPayload(500, p.err.Error())
	}
	return proto.TypeCorrSet, proto.EncodeCorrSet(&proto.CorrSet{Seq: upload.Seq, Entries: p.entries})
}

// serveIngest inserts one pushed recording into its tenant's store and
// returns the acknowledgement. The store keeps serving searches while
// the insert runs — in-flight scans hold their epoch snapshot.
func (e *Engine) serveIngest(frame proto.Frame) (proto.MsgType, []byte) {
	start := time.Now()
	defer func() { e.Metrics.RequestNanos.Add(time.Since(start).Nanoseconds()) }()
	ing, err := proto.DecodeIngest(frame.Payload)
	if err != nil {
		e.Metrics.Errors.Add(1)
		return proto.TypeError, errorPayload(400, err.Error())
	}
	t, err := e.tenantFor(frame.Tenant)
	if err != nil {
		e.Metrics.Errors.Add(1)
		return proto.TypeError, errorPayload(404, err.Error())
	}
	t.metrics.Requests.Add(1)
	defer func() { t.metrics.RequestNanos.Add(time.Since(start).Nanoseconds()) }()
	// Ingests draw from the same per-tenant token bucket as uploads:
	// admission is per request, whatever the work behind it.
	if !e.admit(t) {
		return proto.TypeError, errorPayload(CodeRateLimited,
			fmt.Sprintf("tenant %q over its admission rate; retry later", t.id))
	}
	// Inserts share the search worker pool: the copy-on-write view
	// rebuild and the SlidingStats construction are CPU/memory work
	// just like a scan, and must stay bounded however many
	// connections pipeline ingests.
	e.sem <- struct{}{}
	ack, err := e.ingestInto(t, ing, frame.Payload)
	<-e.sem
	if err != nil {
		e.Metrics.Errors.Add(1)
		t.metrics.Errors.Add(1)
		code := uint16(409)
		if errors.Is(err, errTenantEvicted) {
			code = 503
		}
		return proto.TypeError, errorPayload(code, err.Error())
	}
	return proto.TypeIngestAck, proto.EncodeIngestAck(ack)
}

// errTenantEvicted marks an ingest that kept colliding with tenant
// evictions (see ingestInto); the client may retry.
var errTenantEvicted = errors.New("cloud: tenant evicted during ingest; retry")

// ingestInto runs the insert, and — when the tenant was evicted while
// it ran — recovers by reopening the tenant and re-running the insert
// against the live store, so the caller's ack always describes a
// store the registry tracks. The eviction's snapshot may or may not
// have captured the first attempt: if it did, the rerun's
// duplicate-ID refusal proves the record is already in the reloaded
// store and is acknowledged as such; if not, the rerun inserts it
// afresh. Only repeated eviction collisions surface as an error.
//
// With a WAL enabled, each attempt journals the wire payload BEFORE
// inserting: under wal.SyncAlways the acknowledgement this returns
// implies the recording is on stable storage. payload is the encoded
// TypeIngest payload when the caller has it (the wire path); nil makes
// ingestInto encode it itself. A WAL disk failure fails the request —
// durability was promised and cannot be delivered — while an
// eviction-raced append retries like any other eviction collision. A
// retried attempt may journal the record twice (possibly once in a log
// a checkpoint then empties); replay skips duplicates, so at-least-once
// journaling is safe.
func (e *Engine) ingestInto(t *tenant, ing *proto.Ingest, payload []byte) (*proto.IngestAck, error) {
	if e.registry.WALEnabled() && payload == nil {
		payload = proto.EncodeIngest(ing)
	}
	for attempt := 0; ; attempt++ {
		if e.registry.WALEnabled() {
			if werr := e.registry.AppendWAL(t.id, payload); werr != nil {
				if !errors.Is(werr, mdb.ErrTenantNotResident) {
					return nil, fmt.Errorf("cloud: journaling ingest: %w", werr)
				}
				// Eviction closed the log under us; reopen and retry.
				if attempt >= 2 {
					return nil, fmt.Errorf("%w (tenant %q)", errTenantEvicted, t.id)
				}
				fresh, terr := e.tenantFor(t.id)
				if terr != nil {
					return nil, fmt.Errorf("%w (tenant %q): %v", errTenantEvicted, t.id, terr)
				}
				t = fresh
				continue
			}
		}
		ack, err := t.ingest(ing, e.cfg)
		if err != nil {
			if attempt > 0 {
				// The reopened store may already hold the record —
				// the evicted snapshot captured the first attempt.
				if existing, ok := t.ackExisting(ing); ok {
					ack, err = existing, nil
				}
			}
			if err != nil {
				return nil, err
			}
		}
		if cur, ok := e.registry.Get(t.id); ok && cur == t.store {
			e.Metrics.Ingests.Add(1)
			e.Metrics.IngestedSets.Add(int64(ack.Sets))
			return ack, nil
		}
		if attempt >= 2 {
			return nil, fmt.Errorf("%w (tenant %q)", errTenantEvicted, t.id)
		}
		fresh, terr := e.tenantFor(t.id)
		if terr != nil {
			return nil, fmt.Errorf("%w (tenant %q): %v", errTenantEvicted, t.id, terr)
		}
		t = fresh
	}
}

// Search answers one upload against the default tenant: run Algorithm
// 1 and assemble the correlation set with continuation samples. It is
// safe for concurrent use. It bypasses the batching collector and the
// cache — the network path adds those; Search is the direct,
// always-fresh surface.
func (e *Engine) Search(upload *proto.Upload) (*proto.CorrSet, error) {
	return e.SearchTenant("", upload)
}

// SearchTenant answers one upload against the named tenant's store
// ("" = default tenant), opening it if needed.
func (e *Engine) SearchTenant(tenantID string, upload *proto.Upload) (*proto.CorrSet, error) {
	t, err := e.tenantFor(tenantID)
	if err != nil {
		return nil, err
	}
	window := proto.Dequantize(upload.Samples, upload.Scale)
	res, err := t.searcher.Algorithm1(window)
	if err != nil {
		return nil, err
	}
	e.Metrics.Evaluations.Add(int64(res.Evaluated))
	t.metrics.Evaluations.Add(int64(res.Evaluated))
	return &proto.CorrSet{Seq: upload.Seq, Entries: e.assembleEntries(t, res, len(window))}, nil
}

// Ingest inserts one preprocessed recording into the named tenant's
// store ("" = default tenant) — the in-process twin of the TypeIngest
// wire message.
func (e *Engine) Ingest(tenantID string, ing *proto.Ingest) (*proto.IngestAck, error) {
	t, err := e.tenantFor(tenantID)
	if err != nil {
		return nil, err
	}
	return e.ingestInto(t, ing, nil)
}

// assembleEntries attaches the continuation samples to every retrieved
// match: from the matched offset forward, the configured horizon,
// clipped exactly to the end of the parent recording. Matches with
// less than one window of continuation left are dropped — the edge
// cannot track them even one iteration. One store snapshot serves the
// whole assembly; signal-set IDs are stable across epochs (the set
// list is append-only), so matches from a slightly older scan epoch
// always resolve.
func (e *Engine) assembleEntries(t *tenant, res *search.Result, windowLen int) []proto.CorrEntry {
	horizon := int(e.cfg.HorizonSeconds * e.cfg.BaseRate)
	snap := t.store.Snapshot()
	sets := snap.Sets()
	var entries []proto.CorrEntry
	for _, m := range res.Matches {
		if m.SetID < 0 || m.SetID >= len(sets) {
			continue
		}
		set := sets[m.SetID]
		rec, ok := snap.Record(set.RecordID)
		if !ok {
			continue
		}
		n := horizon
		if avail := rec.Len() - (set.Start + m.Beta); avail < n {
			n = avail
		}
		if n < windowLen {
			continue
		}
		samples, ok := snap.Window(set, m.Beta, n)
		if !ok {
			continue
		}
		counts, scale := proto.Quantize(samples)
		entries = append(entries, proto.CorrEntry{
			SetID:     int32(m.SetID),
			Omega:     float32(m.Omega),
			Beta:      int32(m.Beta),
			Anomalous: set.Anomalous,
			Class:     uint8(set.Class),
			Archetype: uint16(set.Archetype),
			Scale:     scale,
			Samples:   counts,
		})
	}
	return entries
}
