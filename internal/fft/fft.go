// Package fft provides a hand-rolled radix-2 fast Fourier transform
// and spectral helpers. It is the substrate behind the band-power EEG
// features used by the state-of-the-art baseline predictors that
// Table I compares EMAP against (the paper's references [13], [18]):
// those techniques extract delta/theta/alpha/beta band powers from each
// EEG window before classification.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place decimation-in-time radix-2 FFT of x.
// len(x) must be a power of two.
func FFT(x []complex128) error {
	return transform(x, false)
}

// IFFT computes the inverse FFT of x in place, including the 1/N
// scaling. len(x) must be a power of two.
func IFFT(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length >> 1
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// RealFFT returns the FFT of a real signal zero-padded to the next
// power of two, along with the padded length.
func RealFFT(signal []float64) ([]complex128, int) {
	n := NextPow2(len(signal))
	x := make([]complex128, n)
	for i, v := range signal {
		x[i] = complex(v, 0)
	}
	_ = FFT(x) // length is a power of two by construction
	return x, n
}

// PowerSpectrum returns the one-sided power spectral estimate of
// signal: |X[k]|²/N for k in [0, N/2]. The signal is zero-padded to a
// power of two.
func PowerSpectrum(signal []float64) []float64 {
	x, n := RealFFT(signal)
	half := n/2 + 1
	out := make([]float64, half)
	for k := 0; k < half; k++ {
		m := cmplx.Abs(x[k])
		out[k] = m * m / float64(n)
	}
	return out
}

// BandPower integrates the power spectrum of signal over the half-open
// band [loHz, hiHz) given the sample rate. Half-open bounds make
// adjacent clinical bands (delta/theta/alpha/beta) disjoint, so their
// powers partition the spectrum. It returns 0 for degenerate inputs.
func BandPower(signal []float64, sampleRate, loHz, hiHz float64) float64 {
	if len(signal) == 0 || sampleRate <= 0 || hiHz <= loHz {
		return 0
	}
	ps := PowerSpectrum(signal)
	n := (len(ps) - 1) * 2
	binHz := sampleRate / float64(n)
	var acc float64
	for k, p := range ps {
		f := float64(k) * binHz
		if f >= loHz && f < hiHz {
			acc += p
		}
	}
	return acc
}

// Goertzel evaluates the signal power at a single frequency using the
// Goertzel algorithm — cheaper than a full FFT when only a handful of
// frequencies are needed, as on the resource-constrained edge node.
func Goertzel(signal []float64, sampleRate, freqHz float64) float64 {
	n := len(signal)
	if n == 0 || sampleRate <= 0 {
		return 0
	}
	k := math.Round(float64(n) * freqHz / sampleRate)
	w := 2 * math.Pi * k / float64(n)
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range signal {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / float64(n)
}
