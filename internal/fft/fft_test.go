package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"emap/internal/rng"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 255: 256, 256: 256, 257: 512}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 257} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("FFT of length 3 should error")
	}
	if err := FFT(nil); err != nil {
		t.Fatalf("FFT(nil) should be a no-op, got %v", err)
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSinusoidPeak(t *testing.T) {
	const n = 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*16*float64(i)/n), 0)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	// Energy should concentrate at bins 16 and n-16.
	for k := range x {
		mag := cmplx.Abs(x[k])
		if k == 16 || k == n-16 {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Fatalf("bin %d magnitude %g, want %d", k, mag, n/2)
			}
		} else if mag > 1e-9 {
			t.Fatalf("leakage at bin %d: %g", k, mag)
		}
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 << (3 + r.Intn(6))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Norm(0, 5), r.Norm(0, 5))
			orig[i] = x[i]
		}
		if FFT(x) != nil || IFFT(x) != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 64
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(r.Norm(0, 1), 0)
			b[i] = complex(r.Norm(0, 1), 0)
			sum[i] = 2*a[i] + 3*b[i]
		}
		_ = FFT(a)
		_ = FFT(b)
		_ = FFT(sum)
		for i := 0; i < n; i++ {
			if cmplx.Abs(sum[i]-(2*a[i]+3*b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParseval(t *testing.T) {
	r := rng.New(9)
	const n = 512
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		v := r.Norm(0, 3)
		x[i] = complex(v, 0)
		timeEnergy += v * v
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= n
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %g vs %g", timeEnergy, freqEnergy)
	}
}

func TestBandPowerSinusoid(t *testing.T) {
	const fs = 256.0
	n := 1024
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 10 * float64(i) / fs)
	}
	inBand := BandPower(sig, fs, 8, 12)
	outBand := BandPower(sig, fs, 20, 40)
	if inBand <= 0 {
		t.Fatal("in-band power should be positive")
	}
	if outBand > inBand*0.01 {
		t.Fatalf("out-of-band power %g vs in-band %g", outBand, inBand)
	}
}

func TestBandPowerDegenerate(t *testing.T) {
	if BandPower(nil, 256, 1, 10) != 0 {
		t.Fatal("empty signal should give 0")
	}
	if BandPower([]float64{1, 2}, 0, 1, 10) != 0 {
		t.Fatal("zero rate should give 0")
	}
	if BandPower([]float64{1, 2}, 256, 10, 1) != 0 {
		t.Fatal("inverted band should give 0")
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	const fs = 256.0
	n := 256
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = 2 * math.Sin(2*math.Pi*24*float64(i)/fs)
	}
	g := Goertzel(sig, fs, 24)
	// The on-bin power of A·sin is A²/4·N per one-sided bin pair; just
	// verify Goertzel finds large power on-tone and tiny power off-tone.
	off := Goertzel(sig, fs, 60)
	if g < 100*off {
		t.Fatalf("Goertzel discrimination weak: on=%g off=%g", g, off)
	}
}

func TestGoertzelDegenerate(t *testing.T) {
	if Goertzel(nil, 256, 10) != 0 {
		t.Fatal("empty signal should give 0")
	}
	if Goertzel([]float64{1}, 0, 10) != 0 {
		t.Fatal("zero rate should give 0")
	}
}

func TestPowerSpectrumLength(t *testing.T) {
	ps := PowerSpectrum(make([]float64, 300)) // pads to 512
	if len(ps) != 257 {
		t.Fatalf("spectrum length %d, want 257", len(ps))
	}
}

func BenchmarkFFT1024(b *testing.B) {
	r := rng.New(1)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(r.Norm(0, 1), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FFT(x)
	}
}

func BenchmarkGoertzel256(b *testing.B) {
	r := rng.New(1)
	sig := make([]float64, 256)
	for i := range sig {
		sig[i] = r.Norm(0, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Goertzel(sig, 256, 10)
	}
}
