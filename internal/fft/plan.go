package fft

import (
	"fmt"
	"math"
)

// Plan is a reusable radix-2 FFT of one fixed power-of-two size with
// its bit-reversal permutation and twiddle factors precomputed. The
// one-shot FFT/IFFT entry points recompute both on every call — fine
// for spectral features, too slow for the correlation kernel engine,
// which transforms the same sizes millions of times. A Plan is
// immutable after construction and safe for concurrent use.
type Plan struct {
	n      int
	bitrev []int32
	// fwd[s] and inv[s] hold stage s's twiddles contiguously
	// (length 2^(s+1), half of them stored): stage-major layout keeps
	// the butterfly loop streaming through one small table instead of
	// striding across a shared one, and the inverse gets its own
	// conjugated table so the hot loop never conjugates.
	fwd, inv [][]complex128
}

// NewPlan returns a transform plan for length n (a power of two ≥ 1).
func NewPlan(n int) (*Plan, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("fft: plan length %d is not a power of two", n)
	}
	p := &Plan{n: n, bitrev: make([]int32, n)}
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		p.bitrev[i] = int32(j)
	}
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		f := make([]complex128, half)
		v := make([]complex128, half)
		for j := 0; j < half; j++ {
			ang := -2 * math.Pi * float64(j) / float64(length)
			f[j] = complex(math.Cos(ang), math.Sin(ang))
			v[j] = complex(math.Cos(ang), -math.Sin(ang))
		}
		p.fwd = append(p.fwd, f)
		p.inv = append(p.inv, v)
	}
	return p, nil
}

// Len returns the plan's transform length.
func (p *Plan) Len() int { return p.n }

// Forward computes the in-place DFT of x (len(x) must equal Len).
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the in-place inverse DFT of x including the 1/N
// scaling (len(x) must equal Len).
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	inv := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: plan length %d, input length %d", n, len(x)))
	}
	for i := 1; i < n; i++ {
		if j := int(p.bitrev[i]); i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Stage 1 (length 2): unity twiddles only.
	if n >= 2 {
		for i := 0; i < n; i += 2 {
			u, v := x[i], x[i+1]
			x[i], x[i+1] = u+v, u-v
		}
	}
	// Stage 2 (length 4): twiddles 1 and ∓i — adds and swaps, no
	// multiplies. Specializing the two dense early stages (half of
	// all butterflies) skips both the twiddle loads and the per-block
	// slicing of the generic loop.
	if n >= 4 {
		if inverse {
			for i := 0; i < n; i += 4 {
				u, v := x[i], x[i+2]
				x[i], x[i+2] = u+v, u-v
				u, b := x[i+1], x[i+3]
				v = complex(-imag(b), real(b)) // b × (+i)
				x[i+1], x[i+3] = u+v, u-v
			}
		} else {
			for i := 0; i < n; i += 4 {
				u, v := x[i], x[i+2]
				x[i], x[i+2] = u+v, u-v
				u, b := x[i+1], x[i+3]
				v = complex(imag(b), -real(b)) // b × (−i)
				x[i+1], x[i+3] = u+v, u-v
			}
		}
	}
	tables := p.fwd
	if inverse {
		tables = p.inv
	}
	for s := 2; s < len(tables); s++ {
		tw := tables[s]
		length := 2 << s
		half := length >> 1
		for i := 0; i < n; i += length {
			a := x[i : i+half : i+half]
			b := x[i+half : i+length : i+length]
			// j = 0 has a unity twiddle: pure add/sub.
			u, v := a[0], b[0]
			a[0], b[0] = u+v, u-v
			for j := 1; j < half; j++ {
				u := a[j]
				v := b[j] * tw[j]
				a[j] = u + v
				b[j] = u - v
			}
		}
	}
}

// RealPlan transforms real signals of one fixed even power-of-two
// length n through a half-size complex Plan: the signal is packed two
// real samples per complex slot, transformed once at n/2, and the
// half-spectrum unpacked with the standard split step — about twice
// as fast as a complex FFT of the same real data. A RealPlan is
// immutable after construction and safe for concurrent use; the
// methods work entirely in caller-provided buffers.
type RealPlan struct {
	n    int
	half *Plan
	// Split-step twiddle products for k ≤ n/4, premultiplied so the
	// per-bin loops spend one complex multiply each:
	// fw[k] = i·exp(-2πi·k/n) (forward), iw[k] = i·exp(+2πi·k/n)
	// (inverse).
	fw, iw []complex128
}

// scaleHalf halves a complex value with two real multiplies (a full
// complex multiply by 0.5+0i would spend six ops).
func scaleHalf(v complex128) complex128 {
	return complex(real(v)*0.5, imag(v)*0.5)
}

// scaleBy scales a complex value by a real factor.
func scaleBy(v complex128, s float64) complex128 {
	return complex(real(v)*s, imag(v)*s)
}

// NewRealPlan returns a real-input transform plan for length n (an
// even power of two ≥ 2).
func NewRealPlan(n int) (*RealPlan, error) {
	if !IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("fft: real plan length %d is not an even power of two", n)
	}
	half, err := NewPlan(n / 2)
	if err != nil {
		return nil, err
	}
	p := &RealPlan{n: n, half: half,
		fw: make([]complex128, n/4+1), iw: make([]complex128, n/4+1)}
	for k := range p.fw {
		ang := -2 * math.Pi * float64(k) / float64(n)
		w := complex(math.Cos(ang), math.Sin(ang))
		p.fw[k] = 1i * w
		p.iw[k] = 1i * complex(real(w), -imag(w))
	}
	return p, nil
}

// Len returns the real transform length.
func (p *RealPlan) Len() int { return p.n }

// Bins returns the half-spectrum length Len/2 + 1.
func (p *RealPlan) Bins() int { return p.n/2 + 1 }

// Forward computes the half-spectrum X[0..n/2] of the real signal x
// into spec. x may be shorter than Len — missing samples read as zero
// (the zero-padding every linear-correlation use needs). spec must
// have length ≥ Bins(); only spec[:Bins()] is written.
func (p *RealPlan) Forward(spec []complex128, x []float64) {
	if len(x) > p.n {
		panic(fmt.Sprintf("fft: real plan length %d, input length %d", p.n, len(x)))
	}
	half := p.n / 2
	z := spec[:half]
	for k := range z {
		var re, im float64
		if i := 2 * k; i < len(x) {
			re = x[i]
			if i+1 < len(x) {
				im = x[i+1]
			}
		}
		z[k] = complex(re, im)
	}
	p.half.Forward(z)
	z0 := z[0]
	// Split step, pairwise in place: X[k] and X[half-k] come from
	// Z[k] and Z[half-k] only, so each pair is read then overwritten.
	for k := 1; k < (half+1)/2; k++ {
		mk := half - k
		zk, zmk := z[k], z[mk]
		cz := complex(real(zmk), -imag(zmk))
		even2 := zk + cz
		fd := p.fw[k] * (zk - cz)
		z[k] = scaleHalf(even2 - fd)
		xmk := scaleHalf(even2 + fd)
		z[mk] = complex(real(xmk), -imag(xmk))
	}
	if half >= 2 {
		q := half / 2
		z[q] = complex(real(z[q]), -imag(z[q]))
	}
	spec[half] = complex(real(z0)-imag(z0), 0)
	spec[0] = complex(real(z0)+imag(z0), 0)
}

// Inverse reconstructs the real signal from the half-spectrum
// spec[0..n/2] into x (length ≥ Len; only x[:Len] is written),
// including the 1/N scaling. The spectrum must be the half-spectrum
// of a real signal (Hermitian); spec is destroyed.
func (p *RealPlan) Inverse(x []float64, spec []complex128) {
	if len(x) < p.n {
		panic(fmt.Sprintf("fft: real plan length %d, output length %d", p.n, len(x)))
	}
	half := p.n / 2
	s0, sh := spec[0], spec[half]
	z := spec[:half]
	// Inverse split step: repack the half-spectrum into the
	// half-size complex spectrum Z[k] = E[k] + i·O[k]. The repack is
	// linear, so the inverse transform's 1/N scaling is folded into
	// it — one pass over the bins instead of an extra scaling sweep.
	cs := 0.5 / float64(half)
	csh := complex(real(sh), -imag(sh))
	z[0] = scaleBy((s0+csh)+p.iw[0]*(s0-csh), cs)
	for k := 1; k < (half+1)/2; k++ {
		mk := half - k
		sk, smk := z[k], z[mk]
		csm := complex(real(smk), -imag(smk))
		even2 := sk + csm
		ud := p.iw[k] * (sk - csm)
		z[k] = scaleBy(even2+ud, cs)
		eu := scaleBy(even2-ud, cs)
		z[mk] = complex(real(eu), -imag(eu))
	}
	if half >= 2 {
		q := half / 2
		zq := scaleBy(z[q], 2*cs)
		z[q] = complex(real(zq), -imag(zq))
	}
	p.half.transform(z, true)
	for k := 0; k < half; k++ {
		x[2*k] = real(z[k])
		x[2*k+1] = imag(z[k])
	}
}
