package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"emap/internal/rng"
)

func randomSignal(r *rng.Source, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.NormFloat64() * 40
	}
	return out
}

// TestPlanMatchesFFT: the planned transform must agree with the
// one-shot FFT/IFFT across sizes, forward and inverse.
func TestPlanMatchesFFT(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{1, 2, 4, 8, 64, 256, 1024} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		want := append([]complex128(nil), x...)
		if err := FFT(want); err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), x...)
		p.Forward(got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d forward bin %d: plan %v, fft %v", n, i, got[i], want[i])
			}
		}
		p.Inverse(got)
		for i := range got {
			if cmplx.Abs(got[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d roundtrip sample %d: %v, want %v", n, i, got[i], x[i])
			}
		}
	}
	if _, err := NewPlan(12); err == nil {
		t.Fatal("non-power-of-two plan must be rejected")
	}
}

// TestRealPlanForwardMatchesRealFFT: the packed real transform must
// produce the same half-spectrum as the complex FFT of the same
// signal, including when the input is shorter than the plan
// (zero-padding semantics).
func TestRealPlanForwardMatchesRealFFT(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{2, 4, 8, 16, 256, 2048} {
		p, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, inLen := range []int{n, n / 2, n - 1, 1} {
			if inLen < 1 {
				continue
			}
			x := randomSignal(r, inLen)
			full := make([]complex128, n)
			for i, v := range x {
				full[i] = complex(v, 0)
			}
			if err := FFT(full); err != nil {
				t.Fatal(err)
			}
			spec := make([]complex128, p.Bins())
			p.Forward(spec, x)
			for k := 0; k <= n/2; k++ {
				if cmplx.Abs(spec[k]-full[k]) > 1e-9*(1+cmplx.Abs(full[k])) {
					t.Fatalf("n=%d inLen=%d bin %d: real plan %v, fft %v", n, inLen, k, spec[k], full[k])
				}
			}
		}
	}
	if _, err := NewRealPlan(3); err == nil {
		t.Fatal("non-power-of-two real plan must be rejected")
	}
}

// TestRealPlanRoundtrip: Forward→Inverse must reproduce the padded
// signal to near machine precision.
func TestRealPlanRoundtrip(t *testing.T) {
	r := rng.New(13)
	for _, n := range []int{2, 4, 8, 64, 512, 4096} {
		p, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randomSignal(r, n)
		spec := make([]complex128, p.Bins())
		p.Forward(spec, x)
		got := make([]float64, n)
		p.Inverse(got, spec)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d sample %d: %g, want %g", n, i, got[i], x[i])
			}
		}
	}
}
