// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the EMAP reproduction.
//
// Every experiment in the paper reproduction must be bit-reproducible
// across runs and platforms, so we avoid math/rand's unspecified
// algorithm evolution and hand-roll xoshiro256** seeded via SplitMix64,
// the combination recommended by the xoshiro authors. Named sub-streams
// (see Derive) let independent subsystems (synthesiser, dataset
// emulators, workload generators) draw from uncorrelated sequences that
// are still fully determined by a single master seed.
package rng

import "math"

// Source is a deterministic random number source. It is not safe for
// concurrent use; derive one Source per goroutine instead.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the SplitMix64 state and returns the next value.
// It is used only for seeding so that near-identical seeds still
// produce well-separated xoshiro states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	sm := seed
	var s Source
	for i := range s.s {
		s.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state; SplitMix64
	// cannot produce four consecutive zeros, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// Derive returns a new Source whose stream is determined by the parent
// seed and the given name. Two distinct names yield statistically
// independent streams, which keeps e.g. the seizure generator and the
// background-EEG generator decoupled while remaining reproducible.
func (r *Source) Derive(name string) *Source {
	// FNV-1a over the name, mixed with fresh output from the parent.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return New(h ^ r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value of the xoshiro256** sequence.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the Marsaglia
// polar method (exact, no table dependence, platform independent).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Norm returns a normal variate with the given mean and standard
// deviation.
func (r *Source) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using the given
// swap function, mirroring math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}
