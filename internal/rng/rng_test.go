package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d times in 1000 draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Derive("synth")
	parent2 := New(7)
	b := parent2.Derive("synth")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("derived stream not reproducible at %d", i)
		}
	}
	c := New(7).Derive("synth")
	d := New(7).Derive("dataset")
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct names collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestNormScaling(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Norm(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Fatalf("scaled normal mean %v too far from 5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(19)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestRange(t *testing.T) {
	r := New(31)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 4)
		if v < -3 || v >= 4 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(37)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
