package edge

import (
	"context"
	"net"
	"testing"

	"emap/internal/cloud"
	"emap/internal/mdb"
	"emap/internal/proto"
)

// TestProtocolInteropMatrix drives every client×server version pairing
// (v1/v2/v3 both sides, nine combinations) through negotiation and a
// search, asserting the negotiated version is the minimum of the two
// and every pairing still serves correctly. Clients always ask for a
// named tenant: on a v3 connection the request routes to that tenant's
// store, on anything lower the tenant is dropped on the wire and the
// request must land on the server's default tenant — the
// backwards-compatibility half of the multi-tenant design.
func TestProtocolInteropMatrix(t *testing.T) {
	store, _ := buildStore(t)
	// A window excised from a stored recording retrieves its own
	// signal-set at ω ≈ 1 in every pairing — no luck involved.
	rec, ok := store.Record(store.RecordIDs()[0])
	if !ok {
		t.Fatal("store lost its first record")
	}
	window := rec.Samples[2048:2304]

	for sv := proto.Version1; sv <= proto.Version3; sv++ {
		for cv := proto.Version1; cv <= proto.Version3; cv++ {
			// Both the default tenant and ward-7 serve the same
			// store, so a retrieved set proves routing without
			// caring which tenant answered; the metrics below pin
			// down which one actually did.
			reg, err := mdb.NewRegistry("", 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range []string{cloud.DefaultTenant, "ward-7"} {
				if err := reg.Adopt(id, store); err != nil {
					t.Fatal(err)
				}
			}
			srv, err := cloud.NewRegistryServer(reg, cloud.Config{MaxVersion: sv})
			if err != nil {
				t.Fatal(err)
			}
			cConn, sConn := net.Pipe()
			go srv.HandleConn(sConn)

			client, err := NewClientOpts(cConn, ClientOptions{
				Tenant: "ward-7", MaxVersion: cv})
			if err != nil {
				t.Fatalf("s%d×c%d: handshake: %v", sv, cv, err)
			}
			want := cv
			if sv < want {
				want = sv
			}
			if got := client.Version(); got != want {
				t.Fatalf("s%d×c%d: negotiated v%d, want v%d", sv, cv, got, want)
			}

			cs, err := client.Search(context.Background(), window)
			if err != nil {
				t.Fatalf("s%d×c%d: search: %v", sv, cv, err)
			}
			if len(cs.Entries) == 0 {
				t.Fatalf("s%d×c%d: empty correlation set", sv, cv)
			}

			// Tenant accounting: only a v3 connection carries the
			// tenant; everything below lands on the default tenant.
			if want >= proto.Version3 {
				if m := srv.MetricsFor("ward-7"); m == nil || m.Requests.Load() != 1 {
					t.Fatalf("s%d×c%d: tenant ward-7 not routed", sv, cv)
				}
				if m := srv.MetricsFor(""); m != nil && m.Requests.Load() != 0 {
					t.Fatalf("s%d×c%d: default tenant leaked %d requests", sv, cv, m.Requests.Load())
				}
			} else {
				if m := srv.MetricsFor(""); m == nil || m.Requests.Load() != 1 {
					t.Fatalf("s%d×c%d: legacy request missed the default tenant", sv, cv)
				}
				if m := srv.MetricsFor("ward-7"); m != nil {
					t.Fatalf("s%d×c%d: tenant opened on a pre-v3 connection", sv, cv)
				}
			}
			cConn.Close()
		}
	}
}

// TestInteropTrueV1Server pairs the modern client against a hand-
// rolled v1-era server that answers Hello with TypeError (it predates
// negotiation entirely) — the tenth pairing the in-process matrix
// cannot produce. The client must fall back to serial v1 and a search
// must still work; the tenant silently stays home.
func TestInteropTrueV1Server(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	go func() {
		// Ancient server: rejects the Hello, then speaks plain v1.
		if _, _, err := proto.ReadFrame(sConn); err != nil {
			t.Errorf("server: %v", err)
			return
		}
		payload := proto.EncodeError(&proto.ErrorMsg{Code: 400, Text: "unexpected message type 6"})
		if err := proto.WriteFrame(sConn, proto.TypeError, payload); err != nil {
			t.Errorf("server: %v", err)
			return
		}
		typ, p, err := proto.ReadFrame(sConn)
		if err != nil || typ != proto.TypeUpload {
			t.Errorf("server: upload: %d, %v", typ, err)
			return
		}
		u, err := proto.DecodeUpload(p)
		if err != nil {
			t.Errorf("server: %v", err)
			return
		}
		cs := &proto.CorrSet{Seq: u.Seq}
		if err := proto.WriteFrame(sConn, proto.TypeCorrSet, proto.EncodeCorrSet(cs)); err != nil {
			t.Errorf("server: %v", err)
		}
	}()
	client, err := NewClientOpts(cConn, ClientOptions{Tenant: "ward-7"})
	if err != nil {
		t.Fatal(err)
	}
	if client.Version() != proto.Version1 {
		t.Fatalf("negotiated v%d, want v1", client.Version())
	}
	if _, err := client.Search(context.Background(), make([]float64, 256)); err != nil {
		t.Fatalf("v1 fallback search with tenant set: %v", err)
	}
}

// TestTenantPinnedIngestRefusesOldConnection: a client pinned to a
// tenant must refuse to ingest over a connection negotiated below v3
// — the wire would drop the tenant and the recording would land, with
// a success ack, in the server's shared default store (a silent
// cross-tenant write).
func TestTenantPinnedIngestRefusesOldConnection(t *testing.T) {
	store, _ := buildStore(t)
	srv, err := cloud.NewServer(store, cloud.Config{MaxVersion: proto.Version2})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)
	client, err := NewClientOpts(cConn, ClientOptions{Tenant: "ward-7"})
	if err != nil {
		t.Fatal(err)
	}
	if client.Version() != proto.Version2 {
		t.Fatalf("negotiated v%d, want v2", client.Version())
	}
	_, err = client.Ingest(context.Background(), &proto.Ingest{
		RecordID: "r1", Onset: -1, Scale: 1, Samples: make([]int16, 2048)})
	if err == nil {
		t.Fatal("tenant-pinned ingest over v2 must refuse")
	}
	if m := srv.MetricsFor(""); m != nil && m.Ingests.Load() != 0 {
		t.Fatal("refused ingest still reached the default tenant")
	}
}

// TestIngestAgainstOldServer: a v3 client's Ingest against a server
// capped below v3 must surface a clean error (the old server rejects
// the unknown message type), never hang or misroute.
func TestIngestAgainstOldServer(t *testing.T) {
	store, _ := buildStore(t)
	srv, err := cloud.NewServer(store, cloud.Config{MaxVersion: proto.Version2})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go srv.HandleConn(sConn)
	client, err := NewClient(cConn)
	if err != nil {
		t.Fatal(err)
	}
	// This server build does understand TypeIngest even on a v2
	// connection (it routes to the default tenant), so the exchange
	// succeeds — the compatibility contract is "no hang, no
	// misrouting", and the ack proves the default tenant took it.
	ack, err := client.Ingest(context.Background(), &proto.Ingest{
		RecordID: "compat-1", Onset: -1, Scale: 1,
		Samples: make([]int16, 2048),
	})
	if err != nil {
		t.Fatalf("ingest over v2: %v", err)
	}
	if ack.Sets == 0 {
		t.Fatal("ingest created no sets")
	}
	if m := srv.MetricsFor(""); m == nil || m.Ingests.Load() != 1 {
		t.Fatal("ingest missed the default tenant")
	}
}
