package edge

import (
	"context"
	"net"
	"testing"

	"emap/internal/cloud"
	"emap/internal/mdb"
	"emap/internal/synth"
)

// TestDeviceModalityTenantNamespace: a device configured for a second
// modality must route its cloud traffic into the modality-suffixed
// tenant, so ECG signal-sets share the cloud tier with EEG without
// ever mixing stores.
func TestDeviceModalityTenantNamespace(t *testing.T) {
	eeg, _ := buildStore(t)
	reg, err := mdb.NewRegistry("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Adopt(cloud.DefaultTenant, eeg); err != nil {
		t.Fatal(err)
	}
	// The ECG namespace starts empty; the device's own ingest
	// populates it.
	if err := reg.Adopt("ward-7-ecg", mdb.NewStore()); err != nil {
		t.Fatal(err)
	}
	srv, err := cloud.NewRegistryServer(reg, cloud.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	go srv.HandleConn(sConn)
	client, err := NewClientOpts(cConn, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	dev, err := NewDevice(client, Config{Tenant: "ward-7", Modality: "ecg"})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if got := client.Tenant(); got != "ward-7-ecg" {
		t.Fatalf("client tenant %q, want ward-7-ecg", got)
	}

	// Ingest an ECG recording through the device: the sets must land
	// in the modality tenant, not the default EEG store.
	g := synth.NewGenerator(synth.Config{Seed: 9, ArchetypesPerClass: 2})
	rec := g.Instance(synth.ECGNormal, 0, synth.InstanceOpts{OffsetSamples: 0, DurSeconds: 60})
	sets, err := dev.Ingest(context.Background(), rec)
	if err != nil {
		t.Fatal(err)
	}
	if sets == 0 {
		t.Fatal("ingest produced no signal-sets")
	}
	ecgStore, ok := reg.Get("ward-7-ecg")
	if !ok {
		t.Fatal("ECG tenant missing from registry")
	}
	if got := ecgStore.NumSets(); got != sets {
		t.Fatalf("ECG tenant has %d sets, want %d", got, sets)
	}
	if got := eeg.NumSets(); got == 0 {
		t.Fatal("EEG store emptied")
	}
	for _, id := range ecgStore.RecordIDs() {
		r, _ := ecgStore.Record(id)
		if r.Class != synth.ECGNormal {
			t.Fatalf("ECG tenant holds class %v", r.Class)
		}
	}
}

// TestDeviceModalityTenantDerivation covers the namespace rule and its
// validation without a server round-trip.
func TestDeviceModalityTenantDerivation(t *testing.T) {
	cases := []struct {
		tenant, modality, want string
		wantErr                bool
	}{
		{"", "", "", false},
		{"ward-7", "", "ward-7", false},
		{"ward-7", "eeg", "ward-7", false},
		{"ward-7", "ecg", "ward-7-ecg", false},
		{"", "ecg", "ecg", false},
		{"ward-7", "no spaces", "", true},
		{"-lead", "ecg", "", true},
	}
	for _, c := range cases {
		got, err := Config{Tenant: c.tenant, Modality: c.modality}.effectiveTenant()
		if c.wantErr {
			if err == nil {
				t.Fatalf("(%q,%q): no error", c.tenant, c.modality)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Fatalf("(%q,%q) = %q, %v; want %q", c.tenant, c.modality, got, err, c.want)
		}
	}
}
