package edge

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"emap/internal/backoff"
	"emap/internal/cloud"
	"emap/internal/mdb"
	"emap/internal/netsim"
	"emap/internal/proto"
	"emap/internal/synth"
)

// fastBackoff keeps resilience tests quick while still exercising the
// exponential schedule.
func fastBackoff() backoff.Policy {
	return backoff.Policy{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond}
}

// buildResilienceStore assembles a deliberately small MDB: partition
// tests compress a "one window per second" session into milliseconds,
// so searches must complete well inside the continuation horizon even
// under the race detector.
func buildResilienceStore(t testing.TB) (*mdb.Store, *synth.Generator) {
	t.Helper()
	g := synth.NewGenerator(synth.Config{Seed: 51, ArchetypesPerClass: 3})
	var recs []*synth.Recording
	for i := 0; i < 2; i++ {
		recs = append(recs,
			g.Instance(synth.Normal, 0, synth.InstanceOpts{
				OffsetSamples: i * 2000, DurSeconds: 60}),
			g.Instance(synth.Seizure, 0, synth.InstanceOpts{
				OffsetSamples: synth.PreictalAt*256 + i*2000, DurSeconds: 90}),
		)
	}
	store, err := mdb.Build(recs, mdb.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	return store, g
}

// resilienceCloud serves a resilience store with a continuation
// horizon long enough that a race-slowed search still lands inside it.
func resilienceCloudConfig() cloud.Config {
	return cloud.Config{HorizonSeconds: 16}
}

// TestDevicePartitionHeal is the chaos acceptance test: a TCP-deployed
// device loses its cloud mid-stream to a fault-injected partition,
// must keep emitting Status (degraded, with the outage visible in the
// health fields) while retrying with backoff, and must re-adopt a
// fresh correlation set after the link heals.
func TestDevicePartitionHeal(t *testing.T) {
	store, g := buildResilienceStore(t)
	srv, err := cloud.NewServer(store, resilienceCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	part := netsim.NewPartition()
	go srv.Serve(part.Listen(l))
	defer srv.Close()

	client, err := DialOpts(l.Addr().String(), ClientOptions{
		DialTimeout:    time.Second,
		RedialAttempts: 2,
		Redial:         fastBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dev, err := NewDevice(client, Config{
		CloudTimeout:   2 * time.Second,
		Refresh:        fastBackoff(),
		RefreshRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	input := g.SeizureInput(0, 30, 150)
	ctx := context.Background()
	push := func(k int) Status {
		st, err := dev.Push(ctx, input.Samples[k*256:(k+1)*256])
		if err != nil {
			t.Fatalf("window %d: Push returned error during session: %v", k, err)
		}
		if st.Window != k {
			t.Fatalf("window %d: status for window %d", k, st.Window)
		}
		return st
	}
	windows := len(input.Samples) / 256

	// Phase 1: healthy streaming until tracking is established.
	const splitAt = 15
	tracked := false
	for k := 0; k < splitAt; k++ {
		st := push(k)
		if st.Degraded || st.LastCloudErr != nil {
			t.Fatalf("window %d: degraded while healthy: %+v", k, st)
		}
		tracked = tracked || st.Tracking
		time.Sleep(5 * time.Millisecond)
	}
	if !tracked {
		t.Fatal("device never started tracking before the split")
	}

	// Phase 2: hard split. The device must keep emitting a Status for
	// every slot, flag the outage, and keep the retry machinery
	// bounded: one refresh cycle at a time, attempts paced by backoff.
	part.Split()
	baseGoroutines := runtime.NumGoroutine()
	attemptsAtSplit := dev.Attempts()
	const outageWindows = 30
	statuses := 0
	sawDegraded := false
	maxConsecutive := 0
	for k := splitAt; k < splitAt+outageWindows; k++ {
		st := push(k)
		statuses++
		if st.Degraded {
			sawDegraded = true
			if st.LastCloudErr == nil {
				t.Fatalf("window %d: degraded but LastCloudErr nil", k)
			}
		}
		if st.ConsecutiveFailures > maxConsecutive {
			maxConsecutive = st.ConsecutiveFailures
		}
		time.Sleep(5 * time.Millisecond)
	}
	if statuses != outageWindows {
		t.Fatalf("device emitted %d statuses for %d outage slots", statuses, outageWindows)
	}
	if !sawDegraded {
		t.Fatal("device never reported Degraded during the outage")
	}
	if maxConsecutive < 2 {
		t.Fatalf("ConsecutiveFailures peaked at %d, want ≥ 2 (retries with backoff)", maxConsecutive)
	}
	if part.Drops.Load() == 0 && part.Severed.Load() == 0 {
		t.Fatal("partition never bit: the outage was not exercised")
	}
	// Boundedness: attempts must be paced by backoff, not one (or
	// more) per slot forever; goroutines must not pile up.
	attemptsDuringOutage := dev.Attempts() - attemptsAtSplit
	if attemptsDuringOutage > 2*outageWindows {
		t.Fatalf("%d cloud attempts over %d outage slots: retry not bounded", attemptsDuringOutage, outageWindows)
	}
	if attemptsDuringOutage == 0 {
		t.Fatal("no cloud attempts during the outage: retry machinery dead")
	}
	if g := runtime.NumGoroutine(); g > baseGoroutines+10 {
		t.Fatalf("goroutines grew from %d to %d during the outage", baseGoroutines, g)
	}

	// Phase 3: heal. The device must re-adopt a fresh correlation set
	// and drop the degraded flag.
	part.Heal()
	recovered := false
	for k := splitAt + outageWindows; k < windows; k++ {
		st := push(k)
		if st.Tracking && !st.Degraded && st.Remaining > 0 {
			recovered = true
			break
		}
		// Generous pacing: a fresh search must land within the new
		// set's horizon for the adoption to be trackable.
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("device never re-adopted a fresh correlation set after heal")
	}
	if !client.Connected() {
		t.Fatal("client not reconnected after heal")
	}
	if client.Metrics.Reconnects.Load() == 0 {
		t.Fatal("client reports no reconnects across a severed link")
	}
}

// TestDeviceDegradedKeepsObserving: past the horizon with the cloud
// down, the device must re-arm the stale set and keep producing P_A
// estimates instead of going dark.
func TestDeviceDegradedKeepsObserving(t *testing.T) {
	store, g := buildResilienceStore(t)
	srv, err := cloud.NewServer(store, resilienceCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	part := netsim.NewPartition()
	go srv.Serve(part.Listen(l))
	defer srv.Close()

	client, err := DialOpts(l.Addr().String(), ClientOptions{
		DialTimeout: time.Second, RedialAttempts: 1, Redial: fastBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dev, err := NewDevice(client, Config{
		CloudTimeout: time.Second, Refresh: fastBackoff(), RefreshRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	input := g.SeizureInput(0, 30, 60)
	ctx := context.Background()
	k := 0
	for ; k < 10; k++ {
		if _, err := dev.Push(ctx, input.Samples[k*256:(k+1)*256]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	part.Split()
	// Stream far past the downloaded horizon (≈7 windows): degraded
	// tracking must keep Remaining > 0 on re-armed stale sets.
	observed := 0
	for ; k < 40; k++ {
		st, err := dev.Push(ctx, input.Samples[k*256:(k+1)*256])
		if err != nil {
			t.Fatal(err)
		}
		if st.Degraded && st.Tracking && st.Remaining > 0 {
			observed++
		}
		time.Sleep(5 * time.Millisecond)
	}
	if observed == 0 {
		t.Fatal("device went dark past the horizon: no degraded tracking observed")
	}
}

// TestDeviceCloseCancelsInflightRefresh: Close must cancel a refresh
// blocked on a blackholed link instead of leaking it past the device's
// life (the old code fetched with context.Background()).
func TestDeviceCloseCancelsInflightRefresh(t *testing.T) {
	store, g := buildResilienceStore(t)
	srv, err := cloud.NewServer(store, resilienceCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	part := netsim.NewPartition()
	go srv.Serve(part.Listen(l))
	defer srv.Close()

	client, err := DialOpts(l.Addr().String(), ClientOptions{DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// A long CloudTimeout: only Close can unblock the stalled fetch.
	dev, err := NewDevice(client, Config{CloudTimeout: time.Minute, Refresh: fastBackoff()})
	if err != nil {
		t.Fatal(err)
	}

	input := g.SeizureInput(0, 30, 60)
	ctx := context.Background()
	k := 0
	for ; k < 8; k++ {
		if _, err := dev.Push(ctx, input.Samples[k*256:(k+1)*256]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Blackhole the link, then push until a background refresh has
	// been in flight across several slots — with replies blackholed
	// and a one-minute CloudTimeout, that refresh is blocked and only
	// the device's own context can release it.
	part.StallLink()
	stuck := 0
	for ; k < 50 && stuck < 3; k++ {
		if _, err := dev.Push(ctx, input.Samples[k*256:(k+1)*256]); err != nil {
			t.Fatal(err)
		}
		if dev.pending {
			stuck++
		} else {
			stuck = 0
		}
		time.Sleep(2 * time.Millisecond)
	}
	if stuck < 3 {
		t.Fatal("no background refresh got stuck against the blackholed link")
	}

	done := make(chan struct{})
	go func() {
		dev.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on an in-flight refresh: device context not cancelling it")
	}
	part.Heal()
	if _, err := dev.Push(ctx, input.Samples[:256]); !errors.Is(err, ErrDeviceClosed) {
		t.Fatalf("Push after Close = %v, want ErrDeviceClosed", err)
	}
	if err := dev.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestClientCloseFailsInflight: Close must fail waiting requests with
// ErrClosed immediately, not leave them hanging until the read loop
// notices the dead socket.
func TestClientCloseFailsInflight(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer sConn.Close()
	go func() {
		answerHello(t, sConn, proto.Version2)
		proto.ReadFrameAny(sConn) // swallow the upload, never reply
	}()
	client, err := NewClient(cConn)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := client.Search(context.Background(), make([]float64, 256))
		errCh <- err
	}()
	// Let the Search register and write before closing.
	time.Sleep(20 * time.Millisecond)
	client.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight Search after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close left the in-flight Search hanging")
	}
	// Calls after Close fail the same way.
	if _, err := client.Search(context.Background(), make([]float64, 256)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Search after Close = %v, want ErrClosed", err)
	}
}

// TestClientV1AbandonedWaiterFIFO covers the v1 FIFO abandoned-waiter
// branch of roundTrip: a caller that gives up (ctx expired) leaves its
// FIFO slot in place, the late reply is absorbed by the abandoned
// waiter's buffered channel, and the next caller still gets its own
// answer.
func TestClientV1AbandonedWaiterFIFO(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()

	release := make(chan struct{})
	go func() {
		// v1 server: reject the Hello so the client falls back.
		if _, _, err := proto.ReadFrame(sConn); err != nil {
			t.Errorf("server: hello: %v", err)
			return
		}
		proto.WriteFrame(sConn, proto.TypeError,
			proto.EncodeError(&proto.ErrorMsg{Code: 400, Text: "unexpected message type"}))
		// Read upload 1, but only reply after the caller gave up.
		f1, _, err := proto.ReadFrame(sConn)
		if err != nil || f1 != proto.TypeUpload {
			t.Errorf("server: upload1: %d, %v", f1, err)
			return
		}
		<-release
		// Late reply for request 1, then serve request 2 normally.
		// Each reply is tagged with its request's window length.
		proto.WriteFrame(sConn, proto.TypeCorrSet, proto.EncodeCorrSet(
			&proto.CorrSet{Entries: []proto.CorrEntry{{Beta: 256}}}))
		f2, p2, err := proto.ReadFrame(sConn)
		if err != nil || f2 != proto.TypeUpload {
			t.Errorf("server: upload2: %d, %v", f2, err)
			return
		}
		u2, err := proto.DecodeUpload(p2)
		if err != nil {
			t.Errorf("server: %v", err)
			return
		}
		proto.WriteFrame(sConn, proto.TypeCorrSet, proto.EncodeCorrSet(
			&proto.CorrSet{Entries: []proto.CorrEntry{{Beta: int32(len(u2.Samples))}}}))
	}()

	client, err := NewClient(cConn)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Version() != proto.Version1 {
		t.Fatalf("negotiated v%d, want v1", client.Version())
	}

	ctx1, cancel1 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel1()
	if _, err := client.Search(ctx1, make([]float64, 256)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned search = %v, want deadline exceeded", err)
	}
	close(release)

	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	cs, err := client.Search(ctx2, make([]float64, 300))
	if err != nil {
		t.Fatalf("second search after an abandoned waiter: %v", err)
	}
	if got := int(cs.Entries[0].Beta); got != 300 {
		t.Fatalf("second search received the abandoned request's reply (tag %d, want 300)", got)
	}
}

// writeFailConn injects write failures underneath a live client.
type writeFailConn struct {
	net.Conn
	fail atomic.Bool
}

func (c *writeFailConn) Write(p []byte) (int, error) {
	if c.fail.Load() {
		return 0, errors.New("injected write failure")
	}
	return c.Conn.Write(p)
}

// TestClientReconnectsAfterWriteError covers roundTrip's write-failure
// branch: the failed write retires the connection (consuming the
// waiter's own failure notice), and the next call redials.
func TestClientReconnectsAfterWriteError(t *testing.T) {
	store, g := buildStore(t)
	srv, err := cloud.NewServer(store, cloud.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	c := newClient(ClientOptions{
		DialTimeout:    time.Second,
		RedialAttempts: 2,
		Redial:         fastBackoff(),
	})
	c.addr = l.Addr().String()
	raw, err := net.Dial("tcp", c.addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := &writeFailConn{Conn: raw}
	if err := c.install(context.Background(), fc); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	input := g.SeizureInput(0, 30, 10)
	window := input.Samples[1024:1280]
	if _, err := c.Search(ctx, window); err != nil {
		t.Fatalf("search over the wrapped conn: %v", err)
	}

	fc.fail.Store(true)
	_, err = c.Search(ctx, window)
	if err == nil || !strings.Contains(err.Error(), "write") {
		t.Fatalf("search with failing writes = %v, want a write error", err)
	}
	// The failed write retired the connection; this call must redial.
	if _, err := c.Search(ctx, window); err != nil {
		t.Fatalf("search after write-error teardown: %v", err)
	}
	if c.Metrics.Reconnects.Load() == 0 {
		t.Fatal("client did not count the reconnect")
	}
	if c.Metrics.ConnLost.Load() == 0 {
		t.Fatal("client did not count the lost connection")
	}
}

// TestClientKeepalive: an idle dialled client probes the connection,
// and a probe that finds it dead triggers a reconnect — before any
// caller needs the link.
func TestClientKeepalive(t *testing.T) {
	store, _ := buildStore(t)
	srv, err := cloud.NewServer(store, cloud.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	client, err := DialOpts(l.Addr().String(), ClientOptions{
		DialTimeout:    time.Second,
		Keepalive:      25 * time.Millisecond,
		RedialAttempts: 2,
		Redial:         fastBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	deadline := time.Now().Add(5 * time.Second)
	for client.Metrics.Keepalives.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle client never sent a keepalive probe")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Sever the transport; the prober must notice and repair it.
	client.mu.Lock()
	conn := client.conn
	client.mu.Unlock()
	conn.Close()
	for client.Metrics.Reconnects.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("keepalive prober never repaired the dead connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for !client.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("client not connected after keepalive repair")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEmptyRefreshKeepsDegradedFallback: a retrieval that comes back
// EMPTY (the uploaded window correlated with nothing above δ) must
// never replace the non-empty last-good correlation set that degraded
// mode re-arms — otherwise one no-match window landing right before a
// partition sends the device dark for the whole outage. The kernel
// engine made searches fast enough to lose exactly that race, which
// is how this gap was found.
func TestEmptyRefreshKeepsDegradedFallback(t *testing.T) {
	store, g := buildResilienceStore(t)
	srv, err := cloud.NewServer(store, resilienceCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	part := netsim.NewPartition()
	go srv.Serve(part.Listen(l))
	defer srv.Close()

	client, err := DialOpts(l.Addr().String(), ClientOptions{
		DialTimeout: time.Second, RedialAttempts: 1, Redial: fastBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dev, err := NewDevice(client, Config{
		CloudTimeout: time.Second, Refresh: fastBackoff(), RefreshRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The injected adoption below breaks the device's one-in-flight
	// invariant: a real refresh can be left blocked on the full
	// channel, which Close waits out. Drain the channel until Close
	// returns so teardown can't deadlock.
	defer func() {
		closed := make(chan struct{})
		go func() {
			dev.Close()
			close(closed)
		}()
		for {
			select {
			case <-dev.refreshing:
			case <-closed:
				return
			}
		}
	}()

	input := g.SeizureInput(0, 30, 60)
	ctx := context.Background()
	k := 0
	for ; k < 10; k++ {
		if _, err := dev.Push(ctx, input.Samples[k*256:(k+1)*256]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(dev.lastGood.matches) == 0 {
		t.Fatal("fixture never adopted a non-empty correlation set")
	}
	part.Split()
	// Deterministically deliver the race: an empty retrieval is
	// adopted at the next slot, exactly as if a no-match search
	// completed a moment before the link died. A real refresh may
	// already be parked in the channel — discard it and park ours.
	inject := adoptable{store: mdb.NewStore(), seq: k - 1}
	for parked := true; parked; {
		select {
		case dev.refreshing <- inject:
			parked = false
		case <-dev.refreshing:
		}
	}
	observed := 0
	windows := len(input.Samples) / 256
	for ; k < windows && observed == 0; k++ {
		st, err := dev.Push(ctx, input.Samples[k*256:(k+1)*256])
		if err != nil {
			t.Fatal(err)
		}
		if st.Degraded && st.Tracking && st.Remaining > 0 {
			observed++
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(dev.lastGood.matches) == 0 {
		t.Fatal("empty retrieval clobbered the degraded fallback set")
	}
	if observed == 0 {
		t.Fatal("no degraded tracking after an empty retrieval preceded the outage")
	}
}
