package edge

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"emap/internal/cloud"
	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/synth"
)

// buildStore assembles the shared test MDB.
func buildStore(t testing.TB) (*mdb.Store, *synth.Generator) {
	t.Helper()
	g := synth.NewGenerator(synth.Config{Seed: 51, ArchetypesPerClass: 3})
	var recs []*synth.Recording
	for arch := 0; arch < 3; arch++ {
		for i := 0; i < 4; i++ {
			recs = append(recs,
				g.Instance(synth.Normal, arch, synth.InstanceOpts{
					OffsetSamples: i * 2000, DurSeconds: 90}),
				g.Instance(synth.Seizure, arch, synth.InstanceOpts{
					OffsetSamples: synth.PreictalAt*256 + i*2000, DurSeconds: 120}),
			)
		}
	}
	store, err := mdb.Build(recs, mdb.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	return store, g
}

// pipePair wires a client directly to an in-process server over
// net.Pipe.
func pipePair(t testing.TB, store *mdb.Store) *Client {
	t.Helper()
	srv, err := cloud.NewServer(store, cloud.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return pipeClient(t, srv)
}

// pipeClient wires a client to an existing server over net.Pipe.
func pipeClient(t testing.TB, srv *cloud.Server) *Client {
	t.Helper()
	cConn, sConn := net.Pipe()
	go srv.HandleConn(sConn)
	t.Cleanup(func() { cConn.Close() })
	client, err := NewClient(cConn)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

func TestPingPong(t *testing.T) {
	store, _ := buildStore(t)
	client := pipePair(t, store)
	if err := client.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestSearchOverPipe(t *testing.T) {
	store, g := buildStore(t)
	client := pipePair(t, store)
	dev, err := NewDevice(client, Config{})
	if err != nil {
		t.Fatal(err)
	}
	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 2500, DurSeconds: 20, NoArtifacts: true})
	tracked := 0
	for k := 0; k+256 <= len(input.Samples); k += 256 {
		st, err := dev.PushSecond(input.Samples[k : k+256])
		if err != nil {
			t.Fatalf("slot %d: %v", st.Window, err)
		}
		if st.Tracking {
			tracked++
			if st.Remaining == 0 && st.PA != 0 {
				t.Fatalf("inconsistent status: %+v", st)
			}
		}
	}
	if tracked == 0 {
		t.Fatal("device never tracked anything")
	}
}

func TestDistributedPrediction(t *testing.T) {
	store, g := buildStore(t)
	client := pipePair(t, store)
	dev, err := NewDevice(client, Config{})
	if err != nil {
		t.Fatal(err)
	}
	input := g.SeizureInput(0, 30, 28)
	for k := 0; k+256 <= len(input.Samples); k += 256 {
		if _, err := dev.PushSecond(input.Samples[k : k+256]); err != nil {
			t.Fatal(err)
		}
	}
	// Background refreshes may land between slots; allow a beat.
	time.Sleep(50 * time.Millisecond)
	if !dev.Predictor().Anomalous() {
		t.Fatalf("distributed pipeline missed the preictal input (PA %v)", dev.Predictor().History())
	}
}

func TestDeviceOverTCP(t *testing.T) {
	store, g := buildStore(t)
	srv, err := cloud.NewServer(store, cloud.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	client, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(context.Background()); err != nil {
		t.Fatalf("ping over TCP: %v", err)
	}

	dev, err := NewDevice(client, Config{})
	if err != nil {
		t.Fatal(err)
	}
	input := g.Instance(synth.Normal, 1, synth.InstanceOpts{
		OffsetSamples: 2500, DurSeconds: 12, NoArtifacts: true})
	for k := 0; k+256 <= len(input.Samples); k += 256 {
		if _, err := dev.PushSecond(input.Samples[k : k+256]); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Metrics.Requests.Load() == 0 {
		t.Fatal("server saw no requests")
	}
}

func TestServerRejectsGarbageFrame(t *testing.T) {
	store, _ := buildStore(t)
	srv, err := cloud.NewServer(store, cloud.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	go srv.HandleConn(sConn)
	defer cConn.Close()
	// A malformed Upload payload must produce a protocol error reply.
	if err := proto.WriteFrame(cConn, proto.TypeUpload, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := proto.ReadFrame(cConn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != proto.TypeError {
		t.Fatalf("expected error reply, got type %d", typ)
	}
	em, err := proto.DecodeError(payload)
	if err != nil || em.Code != 400 {
		t.Fatalf("error reply: %+v, %v", em, err)
	}
	if srv.Metrics.Errors.Load() == 0 {
		t.Fatal("error not counted")
	}
}

func TestServerRejectsUnknownType(t *testing.T) {
	store, _ := buildStore(t)
	srv, _ := cloud.NewServer(store, cloud.Config{})
	cConn, sConn := net.Pipe()
	go srv.HandleConn(sConn)
	defer cConn.Close()
	if err := proto.WriteFrame(cConn, proto.MsgType(99), nil); err != nil {
		t.Fatal(err)
	}
	typ, _, err := proto.ReadFrame(cConn)
	if err != nil || typ != proto.TypeError {
		t.Fatalf("unknown type reply: %d, %v", typ, err)
	}
}

func TestClientSurvivesCloudDeath(t *testing.T) {
	store, g := buildStore(t)
	srv, _ := cloud.NewServer(store, cloud.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	client, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dev, err := NewDevice(client, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the cloud mid-session: PushSecond must surface an error,
	// not hang or panic.
	srv.Close()
	time.Sleep(20 * time.Millisecond)
	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 2500, DurSeconds: 4, NoArtifacts: true})
	var lastErr error
	for k := 0; k+256 <= len(input.Samples); k += 256 {
		if _, err := dev.PushSecond(input.Samples[k : k+256]); err != nil {
			lastErr = err
		}
	}
	if lastErr == nil {
		t.Fatal("dead cloud produced no error")
	}
	if !strings.Contains(lastErr.Error(), "edge:") {
		t.Fatalf("error lacks context: %v", lastErr)
	}
}

// TestEmptyStoreServesEmptySets: a tenant may start empty and fill
// via ingest, so an empty (or nil) store no longer fails at startup —
// searches simply return an empty correlation set until data arrives.
func TestEmptyStoreServesEmptySets(t *testing.T) {
	for _, store := range []*mdb.Store{nil, mdb.NewStore()} {
		srv, err := cloud.NewServer(store, cloud.Config{})
		if err != nil {
			t.Fatalf("empty store rejected: %v", err)
		}
		client := pipeClient(t, srv)
		cs, err := client.Search(context.Background(), make([]float64, 256))
		if err != nil {
			t.Fatalf("search on empty store: %v", err)
		}
		if len(cs.Entries) != 0 {
			t.Fatalf("empty store returned %d entries", len(cs.Entries))
		}
	}
}

func TestDeviceRejectsBadSlot(t *testing.T) {
	store, _ := buildStore(t)
	client := pipePair(t, store)
	dev, err := NewDevice(client, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.PushSecond(make([]float64, 100)); err == nil {
		t.Fatal("short slot should error")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Fatal("dial to a closed port should error")
	}
}

func TestCorrSetEntriesCarryContinuations(t *testing.T) {
	store, g := buildStore(t)
	srv, _ := cloud.NewServer(store, cloud.Config{HorizonSeconds: 4})
	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 2500, DurSeconds: 6, NoArtifacts: true})
	counts, scale := proto.Quantize(input.Samples[1024:1280])
	corrSet, err := srv.Search(&proto.Upload{Seq: 1, Scale: scale, Samples: counts})
	if err != nil {
		t.Fatal(err)
	}
	if len(corrSet.Entries) == 0 {
		t.Skip("no matches for this window")
	}
	for _, e := range corrSet.Entries {
		if len(e.Samples) < 256 {
			t.Fatalf("entry %d carries only %d samples", e.SetID, len(e.Samples))
		}
	}
}
