package edge

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"emap/internal/cloud"
	"emap/internal/proto"
	"emap/internal/synth"
)

// answerHello consumes the client's Hello and answers with version v.
func answerHello(t *testing.T, conn net.Conn, v uint8) {
	t.Helper()
	f, err := proto.ReadFrameAny(conn)
	if err != nil || f.Type != proto.TypeHello {
		t.Errorf("server: expected hello, got %+v, %v", f, err)
		return
	}
	payload := proto.EncodeHello(&proto.Hello{MaxVersion: v})
	if err := proto.WriteFrame(conn, proto.TypeHello, payload); err != nil {
		t.Errorf("server: hello reply: %v", err)
	}
}

// TestClientMatchesOutOfOrderReplies: two concurrent Searches on one
// connection, the hand-rolled server replies in reverse order, and
// each caller must receive the reply for its own request (matched by
// v2 frame ID).
func TestClientMatchesOutOfOrderReplies(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()

	go func() {
		answerHello(t, sConn, proto.Version2)
		// Read both uploads first, then reply newest-first: the
		// wire order of replies is the reverse of the requests.
		var frames []proto.Frame
		for i := 0; i < 2; i++ {
			f, err := proto.ReadFrameAny(sConn)
			if err != nil {
				t.Errorf("server read %d: %v", i, err)
				return
			}
			frames = append(frames, f)
		}
		for i := len(frames) - 1; i >= 0; i-- {
			f := frames[i]
			u, err := proto.DecodeUpload(f.Payload)
			if err != nil {
				t.Errorf("server decode: %v", err)
				return
			}
			// Tag the reply with the request's window length so
			// the caller can verify it got its own answer.
			cs := &proto.CorrSet{Seq: f.ID, Entries: []proto.CorrEntry{
				{SetID: 1, Beta: int32(len(u.Samples))}}}
			if err := proto.WriteFrameV2(sConn, proto.TypeCorrSet, f.ID, proto.EncodeCorrSet(cs)); err != nil {
				t.Errorf("server write: %v", err)
				return
			}
		}
	}()

	client, err := NewClient(cConn)
	if err != nil {
		t.Fatal(err)
	}
	if client.Version() != proto.Version2 {
		t.Fatalf("negotiated version %d, want 2", client.Version())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	lens := []int{256, 300}
	results := make([]*proto.CorrSet, len(lens))
	errs := make([]error, len(lens))
	var wg sync.WaitGroup
	for i, n := range lens {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			results[i], errs[i] = client.Search(ctx, make([]float64, n))
		}(i, n)
	}
	wg.Wait()
	for i, n := range lens {
		if errs[i] != nil {
			t.Fatalf("search %d: %v", i, errs[i])
		}
		if got := int(results[i].Entries[0].Beta); got != n {
			t.Fatalf("search %d (window %d) received the reply for window %d: replies mismatched", i, n, got)
		}
	}
}

// TestClientV1Fallback: a v1 server answers Hello with an error frame;
// the client must fall back to serial v1 framing and still work.
func TestClientV1Fallback(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()

	go func() {
		// v1 server: unknown message type → error reply.
		if _, _, err := proto.ReadFrame(sConn); err != nil {
			t.Errorf("server: %v", err)
			return
		}
		payload := proto.EncodeError(&proto.ErrorMsg{Code: 400, Text: "unexpected message type 6"})
		if err := proto.WriteFrame(sConn, proto.TypeError, payload); err != nil {
			t.Errorf("server: %v", err)
			return
		}
		// Then one serial v1 exchange.
		typ, p, err := proto.ReadFrame(sConn)
		if err != nil || typ != proto.TypeUpload {
			t.Errorf("server: upload: %d, %v", typ, err)
			return
		}
		u, err := proto.DecodeUpload(p)
		if err != nil {
			t.Errorf("server: %v", err)
			return
		}
		cs := &proto.CorrSet{Seq: u.Seq}
		if err := proto.WriteFrame(sConn, proto.TypeCorrSet, proto.EncodeCorrSet(cs)); err != nil {
			t.Errorf("server: %v", err)
		}
	}()

	client, err := NewClient(cConn)
	if err != nil {
		t.Fatal(err)
	}
	if client.Version() != proto.Version1 {
		t.Fatalf("negotiated version %d, want 1", client.Version())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.Search(ctx, make([]float64, 256)); err != nil {
		t.Fatalf("v1 fallback search: %v", err)
	}
}

// TestClientSearchHonoursContext: a server that never replies must not
// hang a Search whose context expires.
func TestClientSearchHonoursContext(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	go func() {
		answerHello(t, sConn, proto.Version2)
		proto.ReadFrameAny(sConn) // swallow the upload, never reply
	}()
	client, err := NewClient(cConn)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Search(ctx, make([]float64, 256))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("Search ignored the context deadline")
	}
}

// TestClientReconnects: after its connection dies, a Dial-built client
// must redial transparently on a later call.
func TestClientReconnects(t *testing.T) {
	store, g := buildStore(t)
	srv, err := cloud.NewServer(store, cloud.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	client, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	input := g.Instance(synth.Normal, 0, synth.InstanceOpts{
		OffsetSamples: 2500, DurSeconds: 6, NoArtifacts: true})
	window := input.Samples[1024:1280]
	if _, err := client.Search(ctx, window); err != nil {
		t.Fatalf("first search: %v", err)
	}

	// Sever the transport underneath the client.
	client.mu.Lock()
	conn := client.conn
	client.mu.Unlock()
	conn.Close()

	// The next calls may observe the dead conn once; within a few
	// attempts the client must have redialled and succeeded.
	var ok bool
	for attempt := 0; attempt < 5 && !ok; attempt++ {
		if _, err := client.Search(ctx, window); err == nil {
			ok = true
		}
	}
	if !ok {
		t.Fatal("client never reconnected")
	}
	if srv.Metrics.Connections.Load() < 2 {
		t.Fatalf("server saw %d connections, want ≥2 (reconnect)", srv.Metrics.Connections.Load())
	}
}
