// Package edge implements the edge tier of the EMAP framework: the
// protocol client that talks to the cloud service, and the Device that
// runs the full acquisition → upload → download → track → predict loop
// on streaming EEG, exactly as a wearable sensor node would.
package edge

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"emap/internal/backoff"
	"emap/internal/proto"
)

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("edge: client closed")

// errVersionTooOld marks an exchange refused because the connection
// negotiated a protocol version below what the message needs.
var errVersionTooOld = errors.New("edge: connection protocol version too old")

// handshakeTimeout bounds the Hello exchange on a fresh connection.
const handshakeTimeout = 10 * time.Second

// result is one completed exchange, delivered to the waiting caller.
type result struct {
	typ     proto.MsgType
	payload []byte
	err     error
}

// waiter is a registered in-flight request. The channel is buffered so
// the reader never blocks on a caller that gave up (ctx expired).
type waiter struct {
	ch chan result
}

// ClientOptions tunes a Client beyond its connection.
type ClientOptions struct {
	// Tenant is the cloud-side tenant/store ID every request is
	// routed to. It rides in each v3 frame; on connections
	// negotiated below v3 it is dropped on the wire and the server
	// routes to its default tenant. Empty selects the server's
	// default tenant.
	Tenant string
	// MaxVersion caps the protocol version announced in the Hello
	// exchange (0: proto.MaxVersion). Deployments mid-rollout can
	// pin edges to an older version.
	MaxVersion uint8
	// DialTimeout bounds each (re)connection attempt of a dialled
	// client.
	DialTimeout time.Duration
	// RedialAttempts bounds how many connection attempts one call may
	// spend when the previous connection has died (default 3; negative
	// disables redialling entirely). Attempts after the first are
	// paced by Redial.
	RedialAttempts int
	// Redial paces reconnection attempts (zero value: the backoff
	// package defaults, 100 ms doubling to 10 s with jitter).
	Redial backoff.Policy
	// Keepalive, when positive, starts a health prober on a dialled
	// client: whenever the connection has been idle for the interval,
	// the prober round-trips a Ping, and a dead connection is redialled
	// (with Redial pacing) instead of being discovered by the next
	// search. Metrics counts the probes.
	Keepalive time.Duration
	// Dialer, when set, replaces the TCP dialer: every (re)connection
	// comes from this function instead of net.Dial. The fleet
	// harness's in-process netsim mode uses it to mint piped
	// connections straight into a server's HandleConn — thousands of
	// simulated devices with no sockets — while keeping the client's
	// real reconnect/backoff machinery in the loop.
	Dialer func(ctx context.Context) (net.Conn, error)
}

// ClientMetrics exposes the client's connection-state counters (all
// fields atomic): how often it dialled, failed, reconnected, lost a
// live connection, and what its keepalive prober observed.
type ClientMetrics struct {
	// Dials counts connection attempts; DialFailures the ones that
	// failed (including failed handshakes).
	Dials        atomic.Int64
	DialFailures atomic.Int64
	// Reconnects counts connections re-established after a failure.
	Reconnects atomic.Int64
	// ConnLost counts live connections retired by a read or write
	// error.
	ConnLost atomic.Int64
	// Keepalives counts keepalive probes sent; KeepaliveFailures the
	// ones that failed (each failure retires the probed connection).
	Keepalives        atomic.Int64
	KeepaliveFailures atomic.Int64
	// Redirects counts MOVED replies followed to a new owner node
	// (cluster deployments re-home tenants when membership changes).
	Redirects atomic.Int64
}

// ClientMetricsSnapshot is a plain-value copy of a ClientMetrics,
// taken with atomic loads — the race-safe way to read all counters at
// once.
type ClientMetricsSnapshot struct {
	Dials             int64
	DialFailures      int64
	Reconnects        int64
	ConnLost          int64
	Keepalives        int64
	KeepaliveFailures int64
	Redirects         int64
}

// Snapshot returns a race-safe copy of every counter.
func (m *ClientMetrics) Snapshot() ClientMetricsSnapshot {
	return ClientMetricsSnapshot{
		Dials:             m.Dials.Load(),
		DialFailures:      m.DialFailures.Load(),
		Reconnects:        m.Reconnects.Load(),
		ConnLost:          m.ConnLost.Load(),
		Keepalives:        m.Keepalives.Load(),
		KeepaliveFailures: m.KeepaliveFailures.Load(),
		Redirects:         m.Redirects.Load(),
	}
}

// CloudError is a structured error reply from the cloud (TypeError on
// the wire). Code identifies the refusal class — see the cloud tier's
// admission codes (429 rate-limited, 529 shed) and HTTP-flavoured
// failure codes (400/404/500/503).
type CloudError struct {
	Code uint16
	Text string
}

func (e *CloudError) Error() string {
	return fmt.Sprintf("edge: cloud error %d: %s", e.Code, e.Text)
}

// IsCloudCode reports whether err is (or wraps) a CloudError with the
// given code — how callers distinguish an admission refusal they
// should back off from, from a hard failure.
func IsCloudCode(err error, code uint16) bool {
	var ce *CloudError
	return errors.As(err, &ce) && ce.Code == code
}

// Client is a pipelined, context-aware protocol client. Multiple
// goroutines may call Search concurrently: on a v2+ connection every
// request carries an ID and replies are matched as they arrive, in any
// order; against a v1 peer the client transparently falls back to
// FIFO matching (the v1 wire guarantees reply order). A client built
// with Dial re-establishes the connection after a failure on the next
// call. A client carries at most one tenant ID; devices for different
// patients use separate clients (connections are cheap, stores are
// not shared).
type Client struct {
	addr           string // empty: reconnect unavailable (wrapped conn)
	dialer         func(ctx context.Context) (net.Conn, error)
	dialTimeout    time.Duration
	maxVersion     uint8
	redialAttempts int
	redial         backoff.Policy
	keepalive      time.Duration

	done     chan struct{} // closed by Close; stops the keepalive prober
	lastUsed atomic.Int64  // UnixNano of the last completed exchange

	wmu    sync.Mutex // serialises frame writes
	dialMu sync.Mutex // serialises reconnection attempts

	mu      sync.Mutex // guards everything below
	tenant  string
	conn    net.Conn
	version uint8
	seq     uint32
	pending map[uint32]*waiter // v2+: keyed by request ID
	fifo    []*waiter          // v1: replies arrive in request order
	connErr error              // sticky until reconnect
	closed  bool

	// Metrics exposes connection-state counters (safe to read
	// concurrently).
	Metrics ClientMetrics
}

func newClient(opts ClientOptions) *Client {
	mv := opts.MaxVersion
	if mv == 0 || mv > proto.MaxVersion {
		mv = proto.MaxVersion
	}
	attempts := opts.RedialAttempts
	if attempts == 0 {
		attempts = 3
	} else if attempts < 0 {
		attempts = 0 // never redial: surface the connection error as-is
	}
	c := &Client{
		tenant:         opts.Tenant,
		dialer:         opts.Dialer,
		maxVersion:     mv,
		dialTimeout:    opts.DialTimeout,
		redialAttempts: attempts,
		redial:         opts.Redial,
		keepalive:      opts.Keepalive,
		done:           make(chan struct{}),
		pending:        make(map[uint32]*waiter),
	}
	c.lastUsed.Store(time.Now().UnixNano())
	return c
}

// NewClient wraps an established connection and negotiates the
// protocol version with a Hello exchange. A peer that does not
// understand Hello (a v1 server answers it with an error frame) pins
// the connection to version 1.
func NewClient(conn net.Conn) (*Client, error) {
	return NewClientOpts(conn, ClientOptions{})
}

// NewClientOpts wraps an established connection with explicit options
// (tenant routing, protocol-version cap).
func NewClientOpts(conn net.Conn, opts ClientOptions) (*Client, error) {
	c := newClient(opts)
	if err := c.install(context.Background(), conn); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Dial connects to a cloud service address and negotiates the
// protocol version.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOpts(addr, ClientOptions{DialTimeout: timeout})
}

// DialTenant connects to a cloud service address with requests routed
// to the given tenant's store.
func DialTenant(addr, tenant string, timeout time.Duration) (*Client, error) {
	return DialOpts(addr, ClientOptions{Tenant: tenant, DialTimeout: timeout})
}

// DialOpts connects to a cloud service address with explicit options.
// With opts.Dialer set the address may be empty: every connection is
// minted by the dialer and the address is purely informational.
func DialOpts(addr string, opts ClientOptions) (*Client, error) {
	c := newClient(opts)
	c.addr = addr
	conn, err := c.dial(context.Background())
	if err != nil {
		return nil, err
	}
	if err := c.install(context.Background(), conn); err != nil {
		c.Metrics.DialFailures.Add(1)
		conn.Close()
		return nil, err
	}
	if c.keepalive > 0 {
		go c.keepaliveLoop()
	}
	return c, nil
}

// keepaliveLoop probes the connection whenever it has been idle for a
// full keepalive interval. A failed probe retires the connection
// through the usual read/write failure path, and the next probe (or
// call) redials with backoff — so a device sitting between cloud
// refreshes discovers a dead link and repairs it before the refresh
// deadline is on the line.
func (c *Client) keepaliveLoop() {
	ticker := time.NewTicker(c.keepalive)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		if time.Since(time.Unix(0, c.lastUsed.Load())) < c.keepalive {
			continue // the connection is carrying traffic; no probe needed
		}
		timeout := c.keepalive
		if timeout > 5*time.Second {
			timeout = 5 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err := c.Ping(ctx)
		cancel()
		c.Metrics.Keepalives.Add(1)
		if err != nil {
			c.Metrics.KeepaliveFailures.Add(1)
		}
	}
}

func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	c.Metrics.Dials.Add(1)
	if c.dialer != nil {
		conn, err := c.dialer(ctx)
		if err != nil {
			c.Metrics.DialFailures.Add(1)
			return nil, fmt.Errorf("edge: dialing cloud: %w", err)
		}
		return conn, nil
	}
	c.mu.Lock()
	addr := c.addr
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		c.Metrics.DialFailures.Add(1)
		return nil, fmt.Errorf("edge: dialing cloud: %w", err)
	}
	return conn, nil
}

// install negotiates on conn and starts its reader. Callers must not
// hold c.mu.
func (c *Client) install(ctx context.Context, conn net.Conn) error {
	version, err := negotiate(ctx, conn, c.maxVersion)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	c.conn = conn
	c.version = version
	c.connErr = nil
	c.mu.Unlock()
	go c.readLoop(conn)
	return nil
}

// negotiate runs the client half of the Hello exchange, bounded by
// the caller's deadline when it is tighter than the default.
func negotiate(ctx context.Context, conn net.Conn, maxVersion uint8) (uint8, error) {
	deadline := time.Now().Add(handshakeTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	hello := proto.EncodeHello(&proto.Hello{MaxVersion: maxVersion})
	if err := proto.WriteFrame(conn, proto.TypeHello, hello); err != nil {
		return 0, fmt.Errorf("edge: hello: %w", err)
	}
	f, err := proto.ReadFrameAny(conn)
	if err != nil {
		return 0, fmt.Errorf("edge: hello reply: %w", err)
	}
	switch f.Type {
	case proto.TypeHello:
		h, err := proto.DecodeHello(f.Payload)
		if err != nil {
			return 0, err
		}
		return proto.Negotiate(maxVersion, h.MaxVersion), nil
	case proto.TypeError:
		// A v1 server rejects the unknown Hello type; the
		// connection stays usable, just serial.
		return proto.Version1, nil
	default:
		return 0, fmt.Errorf("edge: unexpected hello reply type %d", f.Type)
	}
}

// Version returns the negotiated protocol version (for diagnostics).
func (c *Client) Version() uint8 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Tenant returns the tenant ID requests are routed to ("" = the
// server's default tenant).
func (c *Client) Tenant() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenant
}

// SetTenant changes the tenant ID carried by subsequent requests.
// In-flight requests keep the tenant they were sent with.
func (c *Client) SetTenant(tenant string) {
	c.mu.Lock()
	c.tenant = tenant
	c.mu.Unlock()
}

// Redirect re-points a dialled client at a new service address: the
// live connection (if any) is retired — concurrent in-flight requests
// on it fail and may be retried by their callers — and the next
// exchange dials the new address. This is how an edge follows a
// cluster's MOVED redirect when the tenant's owning node changes; a
// client wrapping a caller-supplied connection has no dial address and
// cannot redirect.
func (c *Client) Redirect(addr string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.addr == "" {
		c.mu.Unlock()
		return errors.New("edge: client has no dial address; cannot redirect")
	}
	c.addr = addr
	conn := c.conn
	c.mu.Unlock()
	c.Metrics.Redirects.Add(1)
	if conn != nil {
		c.failAll(conn, fmt.Errorf("edge: redirected to %s", addr))
	}
	return nil
}

// Close closes the connection, stops the keepalive prober, and fails
// every in-flight request with ErrClosed immediately — waiters do not
// linger until the read loop notices the closed socket.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	pending := c.pending
	fifo := c.fifo
	c.pending = make(map[uint32]*waiter)
	c.fifo = nil
	c.connErr = ErrClosed
	c.mu.Unlock()
	close(c.done)
	for _, w := range pending {
		w.ch <- result{err: ErrClosed}
	}
	for _, w := range fifo {
		w.ch <- result{err: ErrClosed}
	}
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Connected reports whether the client currently holds a live,
// negotiated connection.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed && c.conn != nil && c.connErr == nil
}

// readLoop is the connection's demultiplexer: it reads frames until
// the connection dies and routes each reply to its waiter — by frame
// ID on v2, FIFO on v1.
func (c *Client) readLoop(conn net.Conn) {
	for {
		f, err := proto.ReadFrameAny(conn)
		if err != nil {
			c.failAll(conn, fmt.Errorf("edge: connection lost: %w", err))
			return
		}
		var w *waiter
		c.mu.Lock()
		if f.Version >= proto.Version2 {
			w = c.pending[f.ID]
			delete(c.pending, f.ID)
		} else if len(c.fifo) > 0 {
			w = c.fifo[0]
			c.fifo = c.fifo[1:]
		}
		c.mu.Unlock()
		if w != nil {
			w.ch <- result{typ: f.Type, payload: f.Payload}
		}
	}
}

// failAll marks the connection dead and unblocks every waiter. A stale
// call from an already-replaced connection must not touch the current
// connection's waiters.
func (c *Client) failAll(conn net.Conn, err error) {
	c.mu.Lock()
	// A read/write failure on a connection Close already retired is
	// the close's own echo, not a lost connection: Close drained the
	// waiters and set the sticky ErrClosed, so there is nothing to
	// fail and nothing to count.
	if c.conn != conn || c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.connErr = err
	pending := c.pending
	fifo := c.fifo
	c.pending = make(map[uint32]*waiter)
	c.fifo = nil
	c.mu.Unlock()
	c.Metrics.ConnLost.Add(1)
	conn.Close()
	for _, w := range pending {
		w.ch <- result{err: err}
	}
	for _, w := range fifo {
		w.ch <- result{err: err}
	}
}

// ensure returns a live connection, redialling a Dial-built client
// whose previous connection died. Reconnection is serialised so two
// concurrent callers never race to install competing connections
// (the loser's in-flight request would become unfailable), and the
// caller's ctx bounds the dials, the handshakes, and the backoff
// sleeps between them. Up to redialAttempts connection attempts are
// made, paced by the redial policy; the sticky connection error (or
// the last dial failure) surfaces when they are exhausted.
func (c *Client) ensure(ctx context.Context) (net.Conn, uint8, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, 0, ErrClosed
		}
		if c.connErr == nil && c.conn != nil {
			conn, v := c.conn, c.version
			c.mu.Unlock()
			return conn, v, nil
		}
		if lastErr == nil {
			lastErr = c.connErr
		}
		canRedial := c.addr != ""
		c.mu.Unlock()
		canRedial = canRedial || c.dialer != nil
		if lastErr == nil {
			lastErr = errors.New("edge: no connection")
		}
		if !canRedial || attempt >= c.redialAttempts {
			return nil, 0, lastErr
		}
		if attempt > 0 {
			// Cancellation during the backoff sleep surfaces as the
			// caller's ctx error, not as the stale network failure:
			// an abort must be distinguishable from a flaky link.
			if err := c.redial.Sleep(ctx, attempt-1); err != nil {
				return nil, 0, err
			}
		}
		c.dialMu.Lock()
		// Another caller may have reconnected while we waited; the
		// loop re-checks before dialling again.
		c.mu.Lock()
		fresh := c.connErr == nil && c.conn != nil
		c.mu.Unlock()
		if fresh {
			c.dialMu.Unlock()
			continue
		}
		conn, err := c.dial(ctx)
		if err == nil {
			if err = c.install(ctx, conn); err != nil {
				c.Metrics.DialFailures.Add(1)
				conn.Close()
			}
		}
		c.dialMu.Unlock()
		if err != nil {
			if errors.Is(err, ErrClosed) || ctx.Err() != nil {
				return nil, 0, err
			}
			lastErr = err
			continue
		}
		c.Metrics.Reconnects.Add(1)
	}
}

// roundTrip registers a waiter, writes the request and awaits the
// matching reply, honouring ctx cancellation throughout. minVersion,
// when non-zero, refuses the exchange if the connection the write
// will actually use negotiated below it — checked on ensure's result,
// which is the same conn the registration re-verifies under the lock,
// so a silent reconnect at a lower version cannot slip through.
func (c *Client) roundTrip(ctx context.Context, t proto.MsgType, minVersion uint8, encode func(id uint32) []byte) (proto.MsgType, []byte, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	conn, version, err := c.ensure(ctx)
	if err != nil {
		return 0, nil, err
	}
	if minVersion != 0 && version < minVersion {
		return 0, nil, fmt.Errorf("%w: negotiated v%d, need v%d", errVersionTooOld, version, minVersion)
	}

	// Registration and the wire write happen under one write lock so
	// FIFO order always equals wire order — on a v1 connection the
	// reply is matched purely by position, so a register/write
	// inversion between two goroutines would swap their answers.
	w := &waiter{ch: make(chan result, 1)}
	c.wmu.Lock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wmu.Unlock()
		return 0, nil, ErrClosed
	}
	if c.conn != conn || c.connErr != nil {
		c.mu.Unlock()
		c.wmu.Unlock()
		return 0, nil, errors.New("edge: connection lost during send")
	}
	c.seq++
	id := c.seq
	tenant := c.tenant
	if version >= proto.Version2 {
		c.pending[id] = w
	} else {
		c.fifo = append(c.fifo, w)
	}
	c.mu.Unlock()

	var payload []byte
	if encode != nil {
		payload = encode(id)
	}
	// A stalled peer must not wedge the write lock past the caller's
	// deadline: a tripped write deadline poisons the connection,
	// which failAll then retires.
	if d, ok := ctx.Deadline(); ok {
		conn.SetWriteDeadline(d)
	} else {
		conn.SetWriteDeadline(time.Time{})
	}
	err = proto.WriteFrameTenant(conn, version, t, id, tenant, payload)
	c.wmu.Unlock()
	if err != nil {
		c.failAll(conn, fmt.Errorf("edge: write: %w", err))
		select {
		case <-w.ch: // consume our own failure notice
		default: // an earlier failAll already drained this waiter's map
		}
		return 0, nil, fmt.Errorf("edge: write: %w", err)
	}

	select {
	case r := <-w.ch:
		c.lastUsed.Store(time.Now().UnixNano())
		if r.err != nil {
			return 0, nil, r.err
		}
		return r.typ, r.payload, nil
	case <-ctx.Done():
		// Abandon the request: on v2 the waiter can be dropped;
		// on v1 the reply still occupies a FIFO slot, so the
		// entry stays and the buffered channel absorbs it.
		c.mu.Lock()
		if version >= proto.Version2 {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		return 0, nil, ctx.Err()
	}
}

// Ping round-trips a liveness probe.
func (c *Client) Ping(ctx context.Context) error {
	typ, _, err := c.roundTrip(ctx, proto.TypePing, 0, nil)
	if err != nil {
		return err
	}
	if typ != proto.TypePong {
		return fmt.Errorf("edge: expected pong, got type %d", typ)
	}
	return nil
}

// Ingest pushes a preprocessed recording into the cloud-side store of
// the client's tenant, where it is sliced, labelled and becomes
// searchable immediately — the live-MDB half of the paper's design.
// ing.Seq is overwritten with the request ID. A pre-v3 server answers
// TypeIngest with an error frame, which surfaces here as an error.
//
// A tenant-pinned client refuses to ingest over a connection
// negotiated below v3: the wire would drop the tenant and the
// recording would land — with a success ack — in the server's shared
// default store, a silent cross-tenant write. (Searches stay
// permissive on old connections: they only read, and the default
// tenant is the documented legacy behaviour.)
func (c *Client) Ingest(ctx context.Context, ing *proto.Ingest) (*proto.IngestAck, error) {
	// The v3 floor applies only when a tenant is pinned; roundTrip
	// enforces it on the very connection the write uses, so even a
	// mid-call reconnect that renegotiates lower cannot leak the
	// recording into the default store.
	var minVersion uint8
	if c.Tenant() != "" {
		minVersion = proto.Version3
	}
	for hop := 0; ; hop++ {
		typ, resp, err := c.roundTrip(ctx, proto.TypeIngest, minVersion, func(id uint32) []byte {
			ing.Seq = id
			return proto.EncodeIngest(ing)
		})
		if err != nil {
			return nil, fmt.Errorf("edge: ingest: %w", err)
		}
		switch typ {
		case proto.TypeIngestAck:
			return proto.DecodeIngestAck(resp)
		case proto.TypeMoved:
			if err := c.followMoved(resp, hop); err != nil {
				return nil, fmt.Errorf("edge: ingest: %w", err)
			}
			continue
		case proto.TypeError:
			em, derr := proto.DecodeError(resp)
			if derr != nil {
				return nil, derr
			}
			return nil, &CloudError{Code: em.Code, Text: em.Text}
		default:
			return nil, errors.New("edge: unexpected response type")
		}
	}
}

// followMoved re-points the client at the owner node a MOVED reply
// names so the caller can replay the request. One hop is the normal
// post-migration case; a second redirect for the same request means
// the cluster is flapping and the error surfaces instead.
func (c *Client) followMoved(payload []byte, hop int) error {
	mv, err := proto.DecodeMoved(payload)
	if err != nil {
		return fmt.Errorf("edge: undecodable MOVED reply: %w", err)
	}
	if hop >= 1 {
		return fmt.Errorf("edge: tenant %q moved again (to %s) while following a redirect", mv.Tenant, mv.Addr)
	}
	if err := c.Redirect(mv.Addr); err != nil {
		return err
	}
	return nil
}

// Search uploads a filtered one-second window and returns the cloud's
// signal correlation set. Concurrent calls pipeline on one connection;
// ctx bounds the whole exchange. The upload travels at routine
// priority; see SearchPri.
func (c *Client) Search(ctx context.Context, window []float64) (*proto.CorrSet, error) {
	return c.SearchPri(ctx, window, proto.PriRoutine)
}

// SearchPri uploads a window at an explicit admission priority. A
// saturated cloud sheds proto.PriRoutine uploads (the refusal surfaces
// as a *CloudError with the shed code) but keeps serving
// proto.PriAnomaly ones — a device whose predictor currently flags an
// anomaly uses it to preempt routine refreshes fleet-wide.
func (c *Client) SearchPri(ctx context.Context, window []float64, priority uint8) (*proto.CorrSet, error) {
	counts, scale := proto.Quantize(window)
	for hop := 0; ; hop++ {
		typ, resp, err := c.roundTrip(ctx, proto.TypeUpload, 0, func(id uint32) []byte {
			return proto.EncodeUpload(&proto.Upload{Seq: id, Scale: scale, Samples: counts, Priority: priority})
		})
		if err != nil {
			return nil, fmt.Errorf("edge: search: %w", err)
		}
		switch typ {
		case proto.TypeCorrSet:
			return proto.DecodeCorrSet(resp)
		case proto.TypeMoved:
			if err := c.followMoved(resp, hop); err != nil {
				return nil, fmt.Errorf("edge: search: %w", err)
			}
			continue
		case proto.TypeError:
			em, derr := proto.DecodeError(resp)
			if derr != nil {
				return nil, derr
			}
			return nil, &CloudError{Code: em.Code, Text: em.Text}
		default:
			return nil, errors.New("edge: unexpected response type")
		}
	}
}
