// Package edge implements the edge tier of the EMAP framework: the
// protocol client that talks to the cloud service, and the Device that
// runs the full acquisition → upload → download → track → predict loop
// on streaming EEG, exactly as a wearable sensor node would.
package edge

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"emap/internal/proto"
)

// Client is a synchronous protocol client. It is safe for concurrent
// use; requests are serialised (the protocol is request/response).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	seq  uint32
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn}
}

// Dial connects to a cloud service address.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("edge: dialing cloud: %w", err)
	}
	return NewClient(conn), nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := proto.WriteFrame(c.conn, proto.TypePing, nil); err != nil {
		return err
	}
	typ, _, err := proto.ReadFrame(c.conn)
	if err != nil {
		return err
	}
	if typ != proto.TypePong {
		return fmt.Errorf("edge: expected pong, got type %d", typ)
	}
	return nil
}

// Search uploads a filtered one-second window and returns the cloud's
// signal correlation set.
func (c *Client) Search(window []float64) (*proto.CorrSet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	counts, scale := proto.Quantize(window)
	payload := proto.EncodeUpload(&proto.Upload{Seq: c.seq, Scale: scale, Samples: counts})
	if err := proto.WriteFrame(c.conn, proto.TypeUpload, payload); err != nil {
		return nil, fmt.Errorf("edge: upload: %w", err)
	}
	typ, resp, err := proto.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("edge: awaiting correlation set: %w", err)
	}
	switch typ {
	case proto.TypeCorrSet:
		return proto.DecodeCorrSet(resp)
	case proto.TypeError:
		em, derr := proto.DecodeError(resp)
		if derr != nil {
			return nil, derr
		}
		return nil, fmt.Errorf("edge: cloud error %d: %s", em.Code, em.Text)
	default:
		return nil, errors.New("edge: unexpected response type")
	}
}
