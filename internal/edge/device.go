package edge

import (
	"context"
	"fmt"
	"time"

	"emap/internal/dsp"
	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/search"
	"emap/internal/synth"
	"emap/internal/track"
)

// Config parameterises a Device. Zero values select paper defaults.
type Config struct {
	// BaseRate is the sampling frequency (default 256 Hz).
	BaseRate float64
	// WindowLen is the acquisition slot in samples (default 256).
	WindowLen int
	// FilterTaps, LowHz, HighHz define the acquisition bandpass
	// (defaults 100, 11, 40).
	FilterTaps    int
	LowHz, HighHz float64
	// Track configures the local tracker (Algorithm 2 defaults).
	Track track.Params
	// Predict configures the anomaly decision.
	Predict track.PredictorParams
	// RecallMargin triggers a background refresh this many windows
	// before the downloaded horizon runs out (default 2).
	RecallMargin int
	// WarmupWindows lets the filter settle before the first upload
	// (default 1).
	WarmupWindows int
	// CloudTimeout bounds each cloud exchange (default 30 s).
	CloudTimeout time.Duration
	// Tenant routes this device's cloud traffic (searches and
	// ingests) to one tenant store. NewDevice installs it on the
	// client; empty leaves the client's tenant untouched.
	Tenant string
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseRate <= 0 {
		c.BaseRate = 256
	}
	if c.WindowLen <= 0 {
		c.WindowLen = 256
	}
	if c.FilterTaps <= 0 {
		c.FilterTaps = 100
	}
	if c.LowHz <= 0 {
		c.LowHz = 11
	}
	if c.HighHz <= 0 {
		c.HighHz = 40
	}
	if c.RecallMargin <= 0 {
		c.RecallMargin = 2
	}
	if c.WarmupWindows < 0 {
		c.WarmupWindows = 0
	} else if c.WarmupWindows == 0 {
		c.WarmupWindows = 1
	}
	if c.CloudTimeout <= 0 {
		c.CloudTimeout = 30 * time.Second
	}
	return c, nil
}

// Status summarises one acquisition slot.
type Status struct {
	// Window is the slot index (0-based).
	Window int
	// Tracking reports whether a correlation set is live.
	Tracking bool
	// PA is the current anomaly probability estimate.
	PA float64
	// Remaining is N(F).
	Remaining int
	// CloudCalled reports that this slot issued a cloud search.
	CloudCalled bool
	// Anomalous is the predictor's current decision.
	Anomalous bool
}

// Device is the edge node: it consumes raw samples one second at a
// time and maintains tracking state between cloud refreshes.
//
// Downloaded correlation sets are materialised into a local throwaway
// mini-MDB (one record per downloaded entry) so the same track.Tracker
// used in-process drives the distributed deployment.
type Device struct {
	cfg       Config
	client    *Client
	stream    *dsp.Stream
	tracker   *track.Tracker
	predictor *track.Predictor

	window     int
	lastAdopt  int // window at which the live set was adopted
	refreshing chan adoptable
	pending    bool
}

type adoptable struct {
	store   *mdb.Store
	matches []search.Match
	seq     int // window the search ran against
	err     error
}

// NewDevice returns a device speaking to the given cloud client.
func NewDevice(client *Client, cfg Config) (*Device, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	fir, err := dsp.DesignBandpass(cfg.FilterTaps, cfg.LowHz, cfg.HighHz, cfg.BaseRate, dsp.Hamming)
	if err != nil {
		return nil, fmt.Errorf("edge: designing filter: %w", err)
	}
	if cfg.Tenant != "" {
		client.SetTenant(cfg.Tenant)
	}
	return &Device{
		cfg:        cfg,
		client:     client,
		stream:     fir.NewStream(),
		predictor:  track.NewPredictor(cfg.Predict),
		refreshing: make(chan adoptable, 1),
	}, nil
}

// Predictor exposes the accumulated anomaly decision state.
func (d *Device) Predictor() *track.Predictor { return d.predictor }

// PushSecond consumes one acquisition slot with a background context;
// see Push.
func (d *Device) PushSecond(raw []float64) (Status, error) {
	return d.Push(context.Background(), raw)
}

// Push consumes one acquisition slot of raw samples (WindowLen of
// them) and advances the pipeline. ctx bounds any synchronous cloud
// exchange this slot issues (each exchange is additionally capped by
// Config.CloudTimeout).
func (d *Device) Push(ctx context.Context, raw []float64) (Status, error) {
	if len(raw) != d.cfg.WindowLen {
		return Status{}, fmt.Errorf("edge: slot must be %d samples, got %d", d.cfg.WindowLen, len(raw))
	}
	st := Status{Window: d.window}
	filtered := d.stream.NextBlock(raw)
	defer func() { d.window++ }()

	if d.window < d.cfg.WarmupWindows {
		return st, nil
	}

	// Adopt a completed background refresh.
	select {
	case a := <-d.refreshing:
		d.pending = false
		if a.err == nil {
			tr := track.NewTracker(a.store, a.matches, d.trackParams(a.store, len(a.matches)))
			tr.Skip(d.window - a.seq - 1)
			d.tracker = tr
			d.lastAdopt = d.window
		}
	default:
	}

	if d.tracker == nil {
		if !d.pending {
			// First call is synchronous: nothing to track yet.
			if err := d.refreshNow(ctx, filtered); err != nil {
				return st, err
			}
			st.CloudCalled = true
		}
		return st, nil
	}

	step := d.tracker.Step(filtered)
	// P_A is only an estimate while signals are being tracked; an
	// empty set (horizon exhausted, refresh in flight) carries no
	// information and must not poison the predictor's trajectory.
	if step.Remaining > 0 {
		d.predictor.Observe(step.PA)
	}
	st.Tracking = true
	st.PA = step.PA
	st.Remaining = step.Remaining
	st.Anomalous = d.predictor.Anomalous()

	needRecall := step.NeedsCloud ||
		(d.tracker.HorizonLeft() >= 0 && d.tracker.HorizonLeft() <= d.cfg.RecallMargin)
	if needRecall && !d.pending {
		d.pending = true
		st.CloudCalled = true
		go d.refreshAsync(append([]float64(nil), filtered...), d.window)
	}
	return st, nil
}

// Ingest contributes a raw recording to the cloud mega-database of
// this device's tenant: it applies the MDB preprocessing path
// (resample to the base rate, bandpass) locally, quantizes, and pushes
// the result over the wire, where the cloud slices, labels and serves
// it immediately — the paper's "recordings are continuously inserted"
// loop, driven from the edge. It returns the number of signal-sets the
// recording became.
func (d *Device) Ingest(ctx context.Context, raw *synth.Recording) (int, error) {
	rec, err := mdb.Preprocess(raw, mdb.BuildConfig{
		BaseRate:   d.cfg.BaseRate,
		FilterTaps: d.cfg.FilterTaps,
		LowHz:      d.cfg.LowHz,
		HighHz:     d.cfg.HighHz,
	}, nil)
	if err != nil {
		return 0, fmt.Errorf("edge: preprocessing %s: %w", raw.ID, err)
	}
	counts, scale := proto.Quantize(rec.Samples)
	ctx, cancel := d.cloudCtx(ctx)
	defer cancel()
	ack, err := d.client.Ingest(ctx, &proto.Ingest{
		RecordID:  rec.ID,
		Class:     uint8(rec.Class),
		Archetype: uint16(rec.Archetype),
		Onset:     int32(rec.Onset),
		Scale:     scale,
		Samples:   counts,
	})
	if err != nil {
		return 0, err
	}
	return int(ack.Sets), nil
}

// cloudCtx derives the per-exchange context from the caller's.
func (d *Device) cloudCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, d.cfg.CloudTimeout)
}

// trackParams derives local tracking parameters: the horizon matches
// the downloaded data length so the proactive recall margin fires
// before the set starves, and the tracking threshold H is capped at
// half the downloaded set so sparse correlation sets do not demand a
// cloud call every iteration.
func (d *Device) trackParams(local *mdb.Store, matches int) track.Params {
	p := d.cfg.Track
	if p.WindowLen == 0 {
		p.WindowLen = d.cfg.WindowLen
	}
	h := p.TrackThreshold
	if h == 0 {
		h = track.DefaultParams().TrackThreshold
	}
	if limit := matches / 2; limit < h {
		h = limit
	}
	if h < 2 {
		h = 2
	}
	p.TrackThreshold = h
	if p.HorizonWindows == 0 {
		maxLen := 0
		for _, id := range local.RecordIDs() {
			if rec, ok := local.Record(id); ok && len(rec.Samples) > maxLen {
				maxLen = len(rec.Samples)
			}
		}
		if h := maxLen/p.WindowLen - 1; h > 0 {
			p.HorizonWindows = h
		}
	}
	return p
}

// refreshNow performs a synchronous search and adopts it immediately.
func (d *Device) refreshNow(ctx context.Context, window []float64) error {
	store, matches, err := d.fetch(ctx, window)
	if err != nil {
		return err
	}
	d.tracker = track.NewTracker(store, matches, d.trackParams(store, len(matches)))
	d.lastAdopt = d.window
	return nil
}

// refreshAsync performs a background search; PushSecond adopts the
// result on a later slot, mirroring Fig. 9's overlap of tracking and
// cloud search.
func (d *Device) refreshAsync(window []float64, seq int) {
	store, matches, err := d.fetch(context.Background(), window)
	d.refreshing <- adoptable{store: store, matches: matches, seq: seq, err: err}
}

// fetch round-trips one search and materialises the response into a
// local mini-MDB: one record per entry, one signal-set spanning it.
func (d *Device) fetch(ctx context.Context, window []float64) (*mdb.Store, []search.Match, error) {
	ctx, cancel := d.cloudCtx(ctx)
	defer cancel()
	corrSet, err := d.client.Search(ctx, window)
	if err != nil {
		return nil, nil, err
	}
	store := mdb.NewStore()
	matches := make([]search.Match, 0, len(corrSet.Entries))
	for i, e := range corrSet.Entries {
		samples := proto.Dequantize(e.Samples, e.Scale)
		if len(samples) < d.cfg.WindowLen {
			continue
		}
		rec := &mdb.Record{
			ID:        fmt.Sprintf("dl-%d-%d", corrSet.Seq, i),
			Class:     synth.ClassFromCode(e.Class),
			Archetype: int(e.Archetype),
			Onset:     -1,
			Samples:   samples,
		}
		anomalous := e.Anomalous
		n, err := store.Insert(rec, len(samples), func(int) bool { return anomalous })
		if err != nil || n == 0 {
			continue
		}
		matches = append(matches, search.Match{
			SetID: store.NumSets() - 1,
			Omega: float64(e.Omega),
			Beta:  0, // downloaded samples begin at the matched offset
		})
	}
	return store, matches, nil
}
