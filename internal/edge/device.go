package edge

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"emap/internal/backoff"
	"emap/internal/dsp"
	"emap/internal/mdb"
	"emap/internal/proto"
	"emap/internal/search"
	"emap/internal/synth"
	"emap/internal/track"
)

// ErrDeviceClosed is returned by Push on a closed device.
var ErrDeviceClosed = errors.New("edge: device closed")

// Config parameterises a Device. Zero values select paper defaults.
type Config struct {
	// BaseRate is the sampling frequency (default 256 Hz).
	BaseRate float64
	// WindowLen is the acquisition slot in samples (default 256).
	WindowLen int
	// FilterTaps, LowHz, HighHz define the acquisition bandpass
	// (defaults 100, 11, 40).
	FilterTaps    int
	LowHz, HighHz float64
	// Track configures the local tracker (Algorithm 2 defaults).
	Track track.Params
	// Predict configures the anomaly decision.
	Predict track.PredictorParams
	// RecallMargin triggers a background refresh this many windows
	// before the downloaded horizon runs out (default 2).
	RecallMargin int
	// WarmupWindows lets the filter settle before the first upload
	// (default 1).
	WarmupWindows int
	// CloudTimeout bounds each cloud exchange (default 30 s).
	CloudTimeout time.Duration
	// Refresh paces background-refresh retries while the cloud is
	// unreachable: exponential backoff with jitter, and the
	// consecutive-failure count carries across refresh cycles so
	// retry pressure keeps easing through a long outage. The zero
	// value selects the backoff defaults (100 ms doubling to 10 s,
	// half jittered).
	Refresh backoff.Policy
	// RefreshRetries bounds how many cloud attempts one background
	// refresh cycle may make before giving up (default 5). A cycle
	// that gives up is not the end of retrying: the next slot that
	// still needs a set starts a new cycle against a fresher window.
	RefreshRetries int
	// Tenant routes this device's cloud traffic (searches and
	// ingests) to one tenant store. NewDevice installs it on the
	// client; empty leaves the client's tenant untouched.
	Tenant string
	// Modality labels the signal kind this device monitors ("eeg"
	// default). A non-default modality routes cloud traffic into a
	// modality-suffixed tenant namespace — "<tenant>-<modality>", or
	// the bare modality when Tenant is empty — so a ward's ECG
	// signal-sets share the cloud tier but never mix with its EEG
	// mega-database.
	Modality string
}

// effectiveTenant derives the tenant the device's client routes to:
// the configured tenant, suffixed with the modality namespace when a
// non-default modality is set. Empty means "leave the client alone".
func (c Config) effectiveTenant() (string, error) {
	tenant := c.Tenant
	if c.Modality != "" && c.Modality != "eeg" {
		if tenant == "" {
			tenant = c.Modality
		} else {
			tenant += "-" + c.Modality
		}
	}
	if tenant != "" && !mdb.ValidTenantID(tenant) {
		return "", fmt.Errorf("edge: derived tenant %q is not a valid tenant ID", tenant)
	}
	return tenant, nil
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseRate <= 0 {
		c.BaseRate = 256
	}
	if c.WindowLen <= 0 {
		c.WindowLen = 256
	}
	if c.FilterTaps <= 0 {
		c.FilterTaps = 100
	}
	if c.LowHz <= 0 {
		c.LowHz = 11
	}
	if c.HighHz <= 0 {
		c.HighHz = 40
	}
	if c.RecallMargin <= 0 {
		c.RecallMargin = 2
	}
	if c.WarmupWindows < 0 {
		c.WarmupWindows = 0
	} else if c.WarmupWindows == 0 {
		c.WarmupWindows = 1
	}
	if c.CloudTimeout <= 0 {
		c.CloudTimeout = 30 * time.Second
	}
	if c.RefreshRetries <= 0 {
		c.RefreshRetries = 5
	}
	return c, nil
}

// Status summarises one acquisition slot.
type Status struct {
	// Window is the slot index (0-based).
	Window int
	// Tracking reports whether a correlation set is live.
	Tracking bool
	// PA is the current anomaly probability estimate.
	PA float64
	// Remaining is N(F).
	Remaining int
	// CloudCalled reports that this slot issued a cloud search.
	CloudCalled bool
	// Anomalous is the predictor's current decision.
	Anomalous bool
	// Degraded reports that the device is operating without a fresh,
	// trackable correlation set: cloud exchanges are failing, or the
	// one that finally succeeded landed past its own horizon. Tracking
	// continues on the last downloaded set while refresh retries run
	// in the background; the flag clears when a fresh set is adopted.
	Degraded bool
	// ConsecutiveFailures counts cloud attempts failed since the last
	// successful exchange. It can read 0 while Degraded is still set:
	// the link has recovered and the fresh set is one refresh away.
	ConsecutiveFailures int
	// LastCloudErr is the most recent cloud failure, nil when the
	// last exchange succeeded (even if Degraded has not cleared yet).
	LastCloudErr error
}

// Device is the edge node: it consumes raw samples one second at a
// time and maintains tracking state between cloud refreshes.
//
// Downloaded correlation sets are materialised into a local throwaway
// mini-MDB (one record per downloaded entry) so the same track.Tracker
// used in-process drives the distributed deployment.
type Device struct {
	cfg       Config
	client    *Client
	stream    *dsp.Stream
	tracker   *track.Tracker
	predictor *track.Predictor

	window      int
	refreshing  chan adoptable
	pending     bool
	forceRecall bool      // next slot must request a fresh search
	lastGood    adoptable // last adopted download; degraded mode re-arms it

	ctx    context.Context // cancelled by Close; bounds background refreshes
	cancel context.CancelFunc
	wg     sync.WaitGroup // in-flight refresh cycles

	// hmu guards the health fields, which the background refresh
	// cycle writes while Push reads them into each Status.
	hmu      sync.Mutex
	closed   bool
	degraded bool
	failures int   // consecutive failed cloud attempts
	attempts int64 // total cloud refresh attempts (tests assert boundedness)
	lastErr  error
}

type adoptable struct {
	store   *mdb.Store
	matches []search.Match
	seq     int // window the search ran against
	err     error
}

// NewDevice returns a device speaking to the given cloud client.
func NewDevice(client *Client, cfg Config) (*Device, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	fir, err := dsp.DesignBandpass(cfg.FilterTaps, cfg.LowHz, cfg.HighHz, cfg.BaseRate, dsp.Hamming)
	if err != nil {
		return nil, fmt.Errorf("edge: designing filter: %w", err)
	}
	tenant, err := cfg.effectiveTenant()
	if err != nil {
		return nil, err
	}
	if tenant != "" {
		client.SetTenant(tenant)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Device{
		cfg:        cfg,
		client:     client,
		stream:     fir.NewStream(),
		predictor:  track.NewPredictor(cfg.Predict),
		refreshing: make(chan adoptable, 1),
		ctx:        ctx,
		cancel:     cancel,
	}, nil
}

// Predictor exposes the accumulated anomaly decision state.
func (d *Device) Predictor() *track.Predictor { return d.predictor }

// Close ends the device's life: it cancels any in-flight background
// refresh and waits for the refresh goroutine to exit, so no cloud
// exchange outlives the device. The client is not closed — the caller
// owns it. Push calls after Close fail with ErrDeviceClosed.
func (d *Device) Close() error {
	d.hmu.Lock()
	if d.closed {
		d.hmu.Unlock()
		return nil
	}
	d.closed = true
	d.hmu.Unlock()
	d.cancel()
	d.wg.Wait()
	return nil
}

// noteCloudFailure records one failed cloud attempt and returns the
// consecutive-failure count (which paces the next backoff sleep).
func (d *Device) noteCloudFailure(err error) int {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	d.attempts++
	d.failures++
	d.degraded = true
	d.lastErr = err
	return d.failures
}

// noteCloudSuccess records one successful cloud exchange. The degraded
// flag survives until the downloaded set is actually adopted by a Push.
func (d *Device) noteCloudSuccess() {
	d.hmu.Lock()
	d.attempts++
	d.failures = 0
	d.lastErr = nil
	d.hmu.Unlock()
}

// clearDegraded marks the device healthy again (a fresh set was
// adopted).
func (d *Device) clearDegraded() {
	d.hmu.Lock()
	d.degraded = false
	d.hmu.Unlock()
}

// Attempts returns the total number of cloud refresh attempts made so
// far (successes and failures); resilience tests assert it stays
// bounded during an outage instead of growing with every slot.
func (d *Device) Attempts() int64 {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	return d.attempts
}

// fillHealth populates a Status with the device's outage state.
func (d *Device) fillHealth(st *Status) {
	d.hmu.Lock()
	st.Degraded = d.degraded
	st.ConsecutiveFailures = d.failures
	st.LastCloudErr = d.lastErr
	d.hmu.Unlock()
}

// PushSecond consumes one acquisition slot with a background context;
// see Push.
func (d *Device) PushSecond(raw []float64) (Status, error) {
	return d.Push(context.Background(), raw)
}

// Push consumes one acquisition slot of raw samples (WindowLen of
// them) and advances the pipeline. ctx bounds any synchronous cloud
// exchange this slot issues (each exchange is additionally capped by
// Config.CloudTimeout).
func (d *Device) Push(ctx context.Context, raw []float64) (st Status, err error) {
	if len(raw) != d.cfg.WindowLen {
		return Status{}, fmt.Errorf("edge: slot must be %d samples, got %d", d.cfg.WindowLen, len(raw))
	}
	d.hmu.Lock()
	closed := d.closed
	d.hmu.Unlock()
	if closed {
		return Status{}, ErrDeviceClosed
	}
	st = Status{Window: d.window}
	filtered := d.stream.NextBlock(raw)
	defer func() { d.window++ }()
	// st is a named return so the deferred fill reaches the caller on
	// every path, error returns included.
	defer d.fillHealth(&st)

	if d.window < d.cfg.WarmupWindows {
		return st, nil
	}

	// Adopt a completed background refresh. An EMPTY retrieval (the
	// window correlated with nothing above δ) still arms the live
	// tracker — that is the cloud's honest answer — but never
	// replaces a non-empty lastGood: the degraded-mode fallback
	// exists to hold the last known match DISTRIBUTION through an
	// outage, and an empty set carries none, so clobbering the
	// fallback with it would send the device dark exactly when the
	// stale estimate is most needed (one no-match window right
	// before a partition).
	select {
	case a := <-d.refreshing:
		d.pending = false
		if a.err == nil {
			keepGood := len(a.matches) > 0 || d.lastGood.store == nil
			params := d.trackParams(a.store, len(a.matches))
			skip := d.window - a.seq - 1
			if params.HorizonWindows > 0 && skip >= params.HorizonWindows {
				// The search succeeded but took so long to land —
				// outage retries, typically — that its continuation
				// horizon is already spent. It still carries the
				// freshest cloud picture, so it replaces the
				// degraded-mode fallback, and the next slot is forced
				// to request a fresh set right away: the link just
				// proved healthy, so recovery must not wait out the
				// stale tracker's horizon.
				if keepGood {
					d.lastGood = a
				}
				d.forceRecall = true
			} else {
				tr := track.NewTracker(a.store, a.matches, params)
				tr.Skip(skip)
				d.tracker = tr
				if keepGood {
					d.lastGood = a
				}
				d.clearDegraded()
			}
		}
	default:
	}

	if d.tracker == nil {
		if !d.pending {
			// First call is synchronous: nothing to track yet.
			if err := d.refreshNow(ctx, filtered); err != nil {
				return st, err
			}
			st.CloudCalled = true
		}
		return st, nil
	}

	step := d.tracker.Step(filtered)
	if step.Remaining == 0 && d.isDegraded() && d.lastGood.store != nil && len(d.lastGood.matches) > 0 {
		// Degraded mode: the horizon ran out (or every signal starved)
		// with the cloud still unreachable. Rather than going dark, the
		// device re-arms the last downloaded correlation set and holds
		// its retrieval-time composition as the P_A estimate — the
		// alignment to the live input was lost with the link, so
		// re-stepping the stale set would just eliminate everything,
		// and the last known match distribution is the best estimate
		// the edge has. The re-arm repeats each slot until a fresh set
		// is adopted, and the next slot's Step still eliminates
		// whatever no longer resembles the input.
		d.tracker = track.NewTracker(d.lastGood.store, d.lastGood.matches,
			d.trackParams(d.lastGood.store, len(d.lastGood.matches)))
		step.Remaining = d.tracker.Remaining()
		step.PA = d.tracker.PA()
		step.NeedsCloud = true
	}
	// P_A is only an estimate while signals are being tracked; an
	// empty set (horizon exhausted, refresh in flight) carries no
	// information and must not poison the predictor's trajectory.
	if step.Remaining > 0 {
		d.predictor.Observe(step.PA)
	}
	st.Tracking = true
	st.PA = step.PA
	st.Remaining = step.Remaining
	st.Anomalous = d.predictor.Anomalous()

	needRecall := d.forceRecall || step.NeedsCloud ||
		(d.tracker.HorizonLeft() >= 0 && d.tracker.HorizonLeft() <= d.cfg.RecallMargin)
	if needRecall && !d.pending {
		// The closed re-check and the Add share the health lock with
		// Close's closed-set, so a racing Close either sees no cycle
		// (and spawns are refused from here on) or waits for this one
		// — never a 0→1 wg.Add concurrent with wg.Wait.
		// Priority is decided here, on the Push goroutine: the
		// predictor is not safe to read from the refresh cycle. A
		// device currently flagging an anomaly — or running degraded —
		// uploads at anomaly priority, so a saturated cloud shedding
		// routine refreshes still answers it inside its latency SLO.
		pri := proto.PriRoutine
		if st.Anomalous || st.Degraded {
			pri = proto.PriAnomaly
		}
		d.hmu.Lock()
		if !d.closed {
			d.pending = true
			d.forceRecall = false
			st.CloudCalled = true
			d.wg.Add(1)
			go d.refreshAsync(append([]float64(nil), filtered...), d.window, pri)
		}
		d.hmu.Unlock()
	}
	return st, nil
}

// isDegraded reports whether cloud exchanges are currently failing.
func (d *Device) isDegraded() bool {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	return d.degraded
}

// Ingest contributes a raw recording to the cloud mega-database of
// this device's tenant: it applies the MDB preprocessing path
// (resample to the base rate, bandpass) locally, quantizes, and pushes
// the result over the wire, where the cloud slices, labels and serves
// it immediately — the paper's "recordings are continuously inserted"
// loop, driven from the edge. It returns the number of signal-sets the
// recording became.
func (d *Device) Ingest(ctx context.Context, raw *synth.Recording) (int, error) {
	rec, err := mdb.Preprocess(raw, mdb.BuildConfig{
		BaseRate:   d.cfg.BaseRate,
		FilterTaps: d.cfg.FilterTaps,
		LowHz:      d.cfg.LowHz,
		HighHz:     d.cfg.HighHz,
	}, nil)
	if err != nil {
		return 0, fmt.Errorf("edge: preprocessing %s: %w", raw.ID, err)
	}
	counts, scale := proto.Quantize(rec.Samples)
	ctx, cancel := d.cloudCtx(ctx)
	defer cancel()
	ack, err := d.client.Ingest(ctx, &proto.Ingest{
		RecordID:  rec.ID,
		Class:     uint8(rec.Class),
		Archetype: uint16(rec.Archetype),
		Onset:     int32(rec.Onset),
		Scale:     scale,
		Samples:   counts,
	})
	if err != nil {
		return 0, err
	}
	return int(ack.Sets), nil
}

// cloudCtx derives the per-exchange context from the caller's, bounded
// by CloudTimeout and by the device's own life: Close cancels every
// exchange, synchronous ones included, so no cloud round-trip outlives
// the device.
func (d *Device) cloudCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(ctx, d.cfg.CloudTimeout)
	stop := context.AfterFunc(d.ctx, cancel)
	return ctx, func() {
		stop()
		cancel()
	}
}

// trackParams derives local tracking parameters: the horizon matches
// the downloaded data length so the proactive recall margin fires
// before the set starves, and the tracking threshold H is capped at
// half the downloaded set so sparse correlation sets do not demand a
// cloud call every iteration.
func (d *Device) trackParams(local *mdb.Store, matches int) track.Params {
	p := d.cfg.Track
	if p.WindowLen == 0 {
		p.WindowLen = d.cfg.WindowLen
	}
	h := p.TrackThreshold
	if h == 0 {
		h = track.DefaultParams().TrackThreshold
	}
	if limit := matches / 2; limit < h {
		h = limit
	}
	if h < 2 {
		h = 2
	}
	p.TrackThreshold = h
	if p.HorizonWindows == 0 {
		maxLen := 0
		for _, id := range local.RecordIDs() {
			if rec, ok := local.Record(id); ok && rec.Len() > maxLen {
				maxLen = rec.Len()
			}
		}
		if h := maxLen/p.WindowLen - 1; h > 0 {
			p.HorizonWindows = h
		}
	}
	return p
}

// refreshNow performs a synchronous search and adopts it immediately.
func (d *Device) refreshNow(ctx context.Context, window []float64) error {
	store, matches, err := d.fetch(ctx, window, proto.PriRoutine)
	if err != nil {
		d.noteCloudFailure(err)
		return err
	}
	d.noteCloudSuccess()
	d.tracker = track.NewTracker(store, matches, d.trackParams(store, len(matches)))
	d.lastGood = adoptable{store: store, matches: matches, seq: d.window}
	d.clearDegraded()
	return nil
}

// refreshAsync runs one background refresh cycle; a later Push adopts
// the result, mirroring Fig. 9's overlap of tracking and cloud search.
// Failed exchanges are retried inside the cycle with exponential
// backoff and jitter — one goroutine per cycle, never one per slot, so
// an outage cannot pile up attempts. The consecutive-failure count
// paces the backoff and carries across cycles: when this cycle exhausts
// RefreshRetries and a later slot starts a new one, the new cycle
// resumes the eased cadence instead of hammering the link again. The
// device-lifetime context bounds every exchange and sleep, so Close
// promptly cancels an in-flight refresh.
func (d *Device) refreshAsync(window []float64, seq int, priority uint8) {
	defer d.wg.Done()
	var lastErr error
	for i := 0; i < d.cfg.RefreshRetries; i++ {
		if err := d.ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		store, matches, err := d.fetch(d.ctx, window, priority)
		if err == nil {
			d.noteCloudSuccess()
			d.refreshing <- adoptable{store: store, matches: matches, seq: seq}
			return
		}
		lastErr = err
		fails := d.noteCloudFailure(err)
		if err := d.cfg.Refresh.Sleep(d.ctx, fails-1); err != nil {
			break
		}
	}
	d.refreshing <- adoptable{seq: seq, err: lastErr}
}

// fetch round-trips one search and materialises the response into a
// local mini-MDB: one record per entry, one signal-set spanning it.
func (d *Device) fetch(ctx context.Context, window []float64, priority uint8) (*mdb.Store, []search.Match, error) {
	ctx, cancel := d.cloudCtx(ctx)
	defer cancel()
	corrSet, err := d.client.SearchPri(ctx, window, priority)
	if err != nil {
		return nil, nil, err
	}
	store := mdb.NewStore()
	matches := make([]search.Match, 0, len(corrSet.Entries))
	for i, e := range corrSet.Entries {
		samples := proto.Dequantize(e.Samples, e.Scale)
		if len(samples) < d.cfg.WindowLen {
			continue
		}
		rec := &mdb.Record{
			ID:        fmt.Sprintf("dl-%d-%d", corrSet.Seq, i),
			Class:     synth.ClassFromCode(e.Class),
			Archetype: int(e.Archetype),
			Onset:     -1,
			Samples:   samples,
		}
		anomalous := e.Anomalous
		n, err := store.Insert(rec, len(samples), func(int) bool { return anomalous })
		if err != nil || n == 0 {
			continue
		}
		matches = append(matches, search.Match{
			SetID: store.NumSets() - 1,
			Omega: float64(e.Omega),
			Beta:  0, // downloaded samples begin at the matched offset
		})
	}
	return store, matches, nil
}
