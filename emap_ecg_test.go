package emap_test

import (
	"context"
	"testing"

	"emap"
)

// TestECGSurface drives the root multi-modal API end to end at small
// scale: build an ECG mega-database, open a session with the modality
// and multi-channel options, and run a short two-channel stream. The
// full separation behaviour (pre-arrhythmic flagged, sinus quiet) is
// covered by internal/core; this test pins the public plumbing.
func TestECGSurface(t *testing.T) {
	gen := emap.NewGenerator(46)
	recs := gen.ECGTrainingRecordings(2, 1)
	if len(recs) == 0 {
		t.Fatal("no ECG training recordings")
	}
	for _, r := range recs {
		if r.Class != emap.ECGNormal && r.Class != emap.Arrhythmia {
			t.Fatalf("non-ECG class %v in ECG training set", r.Class)
		}
	}
	store, err := emap.BuildECGMDB(recs)
	if err != nil {
		t.Fatal(err)
	}
	normal, anomalous := store.LabelCounts()
	if normal == 0 || anomalous == 0 {
		t.Fatalf("ECG store labels: %d normal, %d anomalous — want both", normal, anomalous)
	}

	sess, err := emap.New(store,
		emap.WithModality("ecg"),
		emap.WithChannels(2),
		emap.WithAgreement(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sess.Config()
	if cfg.Modality != "ecg" || cfg.Channels != 2 || cfg.Agreement != 2 {
		t.Fatalf("options did not plumb through: modality=%q channels=%d agreement=%d",
			cfg.Modality, cfg.Channels, cfg.Agreement)
	}

	// A short two-channel run over sinus rhythm: both channels quiet,
	// so the K=2 alarm must stay silent.
	mst, err := sess.StartMulti(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	in := gen.Instance(emap.ECGNormal, 0, emap.InstanceOpts{OffsetSamples: 0, DurSeconds: 8})
	wlen := 256
	go func() {
		for off := 0; off+wlen <= len(in.Samples); off += wlen {
			w := in.Samples[off : off+wlen]
			if err := mst.Push(emap.MultiWindow{w, w}); err != nil {
				return
			}
		}
	}()
	for rep := range mst.Reports() {
		if rep.Alarm {
			t.Errorf("window %d: sinus input raised the 2-of-2 alarm", rep.Window)
		}
		if rep.Window == 7 {
			break
		}
	}
	rep, err := mst.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Modality != "ecg" || rep.Channels != 2 || rep.Agreement != 2 {
		t.Fatalf("multi report header: %+v", rep)
	}
	if rep.Alarm {
		t.Fatal("final alarm set on sinus input")
	}
	if len(mst.Stats()) == 0 {
		t.Fatal("no pipeline stage stats")
	}
}
